//! The framed-TCP service front-end: a [`Server`] that accepts connections
//! and drives a shared [`RuntimeHandle`], plus the small [`BlockingClient`]
//! speaking the same [`wire`](crate::wire) protocol.
//!
//! Each connection gets its own handler thread, but every handler feeds the
//! *same* ingestion queue — so predictions from concurrent clients coalesce
//! into shared micro-batches, which is the whole point of the runtime
//! layer. The server adds no protocol state of its own: one request frame
//! in, one response frame out, in order, per connection.
//!
//! ```no_run
//! use hdc_serve::{BlockingClient, Enc, Pipeline, Runtime, RuntimeConfig, Server};
//!
//! let model = Pipeline::builder(4_096).encoder(Enc::angle()).build()?;
//! let runtime = Runtime::spawn(model, RuntimeConfig::default())?;
//! let server = Server::spawn("127.0.0.1:0", runtime.handle()).expect("bind");
//! let mut client = BlockingClient::connect(server.local_addr()).expect("connect");
//! let stats = client.stats().expect("stats");
//! assert_eq!(stats.dim, 4_096);
//! server.shutdown();
//! runtime.shutdown();
//! # Ok::<(), hdc_serve::HdcError>(())
//! ```

use std::io::{self, BufReader, BufWriter};
use std::net::{
    IpAddr, Ipv4Addr, Ipv6Addr, Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

use std::time::Duration;

use hdc_core::{BinaryHypervector, HdcError};

use crate::runtime::{Prediction, RuntimeHandle, RuntimeStats, ValuePrediction};
use crate::snapshot::Snapshot;
use crate::wire::{self, Request, Response};

/// A running TCP front-end over one serving runtime.
///
/// Dropping the server (or calling [`shutdown`](Self::shutdown)) stops the
/// accept loop and closes every connection; the runtime itself keeps
/// running until its own `shutdown`.
#[derive(Debug)]
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts accepting
    /// connections, each served by its own thread against a clone of
    /// `handle`.
    ///
    /// # Errors
    ///
    /// Returns `io::Error` if the address cannot be bound.
    pub fn spawn<X>(addr: impl ToSocketAddrs, handle: RuntimeHandle<X>) -> io::Result<Self>
    where
        X: ?Sized + ToOwned + Sync + 'static,
        X::Owned: Send + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&stop);
            thread::Builder::new()
                .name("hdc-serve-accept".into())
                .spawn(move || accept_loop(&listener, &stop, &handle))
                .expect("spawning the accept thread")
        };
        Ok(Self {
            local_addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (with the ephemeral port resolved).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, closes every live connection and joins the
    /// server's threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop blocks in `accept()`; a throwaway connection
        // wakes it so it can observe the flag. An unspecified bind address
        // (0.0.0.0 / ::) is not itself connectable everywhere, so aim the
        // wake-up at the loopback of the same family and port.
        let mut wake = self.local_addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake {
                SocketAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(wake);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop<X>(listener: &TcpListener, stop: &Arc<AtomicBool>, handle: &RuntimeHandle<X>)
where
    X: ?Sized + ToOwned + Sync + 'static,
    X::Owned: Send + 'static,
{
    let mut connections: Vec<(TcpStream, JoinHandle<()>)> = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Reap connections whose handler already returned, so a
        // long-running server does not accumulate one fd + JoinHandle per
        // short-lived client.
        connections.retain(|(_, worker)| !worker.is_finished());
        let Ok(clone) = stream.try_clone() else {
            continue;
        };
        let handle = handle.clone();
        let worker = thread::Builder::new()
            .name("hdc-serve-conn".into())
            .spawn(move || {
                let _ = serve_connection(stream, &handle);
            })
            .expect("spawning a connection thread");
        connections.push((clone, worker));
    }
    // Unblock every in-flight reader, then join the handlers.
    for (stream, _) in &connections {
        let _ = stream.shutdown(Shutdown::Both);
    }
    for (_, worker) in connections {
        let _ = worker.join();
    }
}

fn serve_connection<X>(stream: TcpStream, handle: &RuntimeHandle<X>) -> io::Result<()>
where
    X: ?Sized + ToOwned + Sync + 'static,
    X::Owned: Send + 'static,
{
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream.try_clone()?);
    loop {
        let request = match wire::read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return Ok(()),
            Err(error) if error.kind() == io::ErrorKind::InvalidData => {
                // A malformed frame poisons the stream position; answer
                // and hang up.
                let _ = wire::write_response(
                    &mut writer,
                    &Response::Error {
                        message: error.to_string(),
                    },
                );
                let _ = stream.shutdown(Shutdown::Both);
                return Err(error);
            }
            Err(error) => return Err(error),
        };
        let response = answer(handle, request);
        wire::write_response(&mut writer, &response)?;
    }
}

/// Maps one decoded request onto the runtime handle. Every runtime error
/// becomes a [`Response::Error`] — the connection survives bad requests.
fn answer<X>(handle: &RuntimeHandle<X>, request: Request) -> Response
where
    X: ?Sized + ToOwned + Sync + 'static,
    X::Owned: Send + 'static,
{
    fn fail(error: &HdcError) -> Response {
        Response::Error {
            message: error.to_string(),
        }
    }
    match request {
        Request::Predict { key, hv } => match handle.predict_encoded(key, hv) {
            Ok(prediction) => Response::Label {
                label: prediction.label as u32,
                generation: prediction.generation,
            },
            Err(error) => fail(&error),
        },
        Request::PredictBatch { pairs } => match handle.predict_encoded_many(pairs) {
            Ok(predictions) => Response::Labels {
                predictions: predictions
                    .into_iter()
                    .map(|p| (p.label as u32, p.generation))
                    .collect(),
            },
            Err(error) => fail(&error),
        },
        Request::Insert { key, hv } => match handle.insert(key, hv) {
            Ok(replaced) => Response::Inserted { replaced },
            Err(error) => fail(&error),
        },
        Request::Remove { key } => match handle.remove(key) {
            Ok(removed) => Response::Removed { removed },
            Err(error) => fail(&error),
        },
        Request::Fit { label, hv } => match handle.fit_encoded(hv, label as usize) {
            Ok(()) => Response::FitAck,
            Err(error) => fail(&error),
        },
        Request::Refresh => match handle.refresh() {
            Ok(generation) => Response::Refreshed { generation },
            Err(error) => fail(&error),
        },
        Request::AddShard => match handle.add_shard() {
            Ok(id) => Response::ShardAdded { id: id as u32 },
            Err(error) => fail(&error),
        },
        Request::RemoveShard { id } => match handle.remove_shard(id as usize) {
            Ok(removed) => Response::ShardRemoved { removed },
            Err(error) => fail(&error),
        },
        Request::Stats => match handle.stats() {
            Ok(stats) => Response::Stats(stats),
            Err(error) => fail(&error),
        },
        Request::PredictValue { key, hv } => match handle.predict_value_encoded(key, hv) {
            Ok(prediction) => Response::Value {
                value: prediction.value,
                generation: prediction.generation,
            },
            Err(error) => fail(&error),
        },
        Request::FitValue { value, hv } => match handle.fit_value_encoded(hv, value) {
            Ok(()) => Response::FitAck,
            Err(error) => fail(&error),
        },
        Request::PredictValueBatch { pairs } => match handle.predict_value_encoded_many(pairs) {
            Ok(predictions) => Response::Values {
                predictions: predictions
                    .into_iter()
                    .map(|p| (p.value, p.generation))
                    .collect(),
            },
            Err(error) => fail(&error),
        },
        Request::Snapshot => match handle.snapshot() {
            Ok(snapshot) => {
                let bytes = snapshot.to_bytes();
                if bytes.len() > wire::MAX_SNAPSHOT_BYTES {
                    // An unencodable frame would kill the connection and
                    // leave the client staring at an EOF; answer with the
                    // reason instead.
                    Response::Error {
                        message: format!(
                            "snapshot of {} bytes exceeds the {}-byte frame cap; \
                             the shard state is too large to stream in one frame",
                            bytes.len(),
                            wire::MAX_FRAME_BYTES,
                        ),
                    }
                } else {
                    Response::Snapshot { bytes }
                }
            }
            Err(error) => fail(&error),
        },
        Request::Restore { snapshot } => {
            match Snapshot::from_bytes(&snapshot).and_then(|snapshot| handle.restore(snapshot)) {
                Ok(generation) => Response::Restored { generation },
                Err(error) => fail(&error),
            }
        }
        // Cluster membership is a router decision: a shard runtime cannot
        // rewire the ring its peers route by, so these ops are answered
        // only by a cluster front-end (see `ClusterServer`).
        Request::ShardJoin { .. } | Request::ShardLeave { .. } => Response::Error {
            message: "shard join/leave is answered by a cluster router, not a shard runtime".into(),
        },
        // The health probe never touches the dispatcher queue: liveness,
        // generation and uptime are read straight off the handle's shared
        // state, so a load balancer can poll at any rate without
        // perturbing micro-batching — but a dead dispatcher (shutdown or
        // panic) answers unhealthy, never a stale Pong.
        Request::Ping => {
            if handle.is_alive() {
                Response::Pong {
                    generation: handle.generation().id(),
                    uptime_us: handle.uptime().as_micros() as u64,
                }
            } else {
                fail(&HdcError::ServiceUnavailable)
            }
        }
    }
}

/// Deadlines and connect-retry policy of a [`BlockingClient`] — so a
/// router (or a test) never hangs on a dead shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Per-attempt connection deadline.
    pub connect_timeout: Duration,
    /// Deadline for each response read (`None` blocks forever).
    pub read_timeout: Option<Duration>,
    /// Deadline for each request write (`None` blocks forever).
    pub write_timeout: Option<Duration>,
    /// Extra connection attempts after the first failure.
    pub connect_retries: u32,
    /// Sleep before the first retry; doubles per subsequent attempt.
    pub retry_backoff: Duration,
    /// Ceiling on the doubled backoff — with many retries configured the
    /// schedule plateaus here instead of growing without bound.
    pub max_backoff: Duration,
}

impl Default for ClientConfig {
    /// 2 s to connect (3 retries, 25 ms doubling backoff capped at 1 s),
    /// 10 s per read and write — generous enough for loaded CI machines,
    /// bounded enough that a dead shard is reported instead of hanging
    /// the caller.
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            connect_retries: 3,
            retry_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
        }
    }
}

impl ClientConfig {
    /// The sleep before retry `attempt` (1-based): `retry_backoff`
    /// doubled per attempt, capped at [`max_backoff`](Self::max_backoff),
    /// then jittered into the upper half of that window —
    /// `[capped/2, capped]` — by a deterministic hash of `(seed,
    /// attempt)`.
    ///
    /// Deterministic jitter keeps the schedule reproducible (and
    /// unit-testable) for a fixed seed while still decorrelating a fleet
    /// of clients that reconnect to the same revived shard at once:
    /// [`BlockingClient::connect_with`] seeds with the process id, so
    /// every process walks a different — but stable — schedule.
    #[must_use]
    pub fn backoff_delay(&self, attempt: u32, seed: u64) -> Duration {
        // 2^(attempt-1), shift-bounded so huge retry counts saturate
        // instead of overflowing; the cap below makes the value moot
        // long before 2^30.
        let exponent = attempt.saturating_sub(1).min(30);
        let doubled = self.retry_backoff.saturating_mul(1u32 << exponent);
        let capped = doubled.min(self.max_backoff);
        let nanos = u64::try_from(capped.as_nanos()).unwrap_or(u64::MAX);
        if nanos == 0 {
            return Duration::ZERO;
        }
        let half = nanos / 2;
        let jitter = splitmix64(seed ^ (u64::from(attempt) << 32)) % (nanos - half + 1);
        Duration::from_nanos(half + jitter)
    }
}

/// SplitMix64 finalizer — a cheap, well-mixed stateless hash for the
/// backoff jitter (no `rand` dependency on the connect path).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A minimal synchronous client of the framed protocol: one request in
/// flight at a time, blocking until the response frame arrives (bounded by
/// the [`ClientConfig`] deadlines).
#[derive(Debug)]
pub struct BlockingClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl BlockingClient {
    /// Connects to a running [`Server`] with the default [`ClientConfig`]
    /// (bounded timeouts and connect retries).
    ///
    /// # Errors
    ///
    /// Returns `io::Error` if the connection cannot be established within
    /// the configured attempts.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit deadlines and retry policy: each attempt
    /// tries every resolved address under `connect_timeout`, failed
    /// attempts sleep per [`ClientConfig::backoff_delay`] (doubling from
    /// `retry_backoff`, capped at `max_backoff`, jittered per process),
    /// and the established stream carries the read/write deadlines.
    ///
    /// # Errors
    ///
    /// Returns the last attempt's `io::Error` once `1 + connect_retries`
    /// attempts have failed (`TimedOut` if the deadline expired).
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> io::Result<Self> {
        let seed = u64::from(std::process::id());
        let mut last_error = None;
        for attempt in 0..=config.connect_retries {
            if attempt > 0 {
                thread::sleep(config.backoff_delay(attempt, seed));
            }
            match Self::try_connect(&addr, &config) {
                Ok(client) => return Ok(client),
                Err(error) => last_error = Some(error),
            }
        }
        Err(last_error
            .unwrap_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved")))
    }

    fn try_connect(addr: &impl ToSocketAddrs, config: &ClientConfig) -> io::Result<Self> {
        let mut last_error = None;
        for resolved in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&resolved, config.connect_timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(config.read_timeout)?;
                    stream.set_write_timeout(config.write_timeout)?;
                    return Ok(Self {
                        reader: BufReader::new(stream.try_clone()?),
                        writer: BufWriter::new(stream),
                    });
                }
                Err(error) => last_error = Some(error),
            }
        }
        Err(last_error
            .unwrap_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved")))
    }

    fn call(&mut self, request: &Request) -> io::Result<Response> {
        wire::write_request(&mut self.writer, request)?;
        match wire::read_response(&mut self.reader)? {
            Some(Response::Error { message }) => Err(io::Error::other(message)),
            Some(response) => Ok(response),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
        }
    }

    fn unexpected(response: &Response) -> io::Error {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected response {response:?}"),
        )
    }

    /// Predicts one keyed, encoded query.
    ///
    /// # Errors
    ///
    /// Returns `io::Error` on transport failure or a server-side error.
    pub fn predict(&mut self, key: &str, hv: &BinaryHypervector) -> io::Result<Prediction> {
        let response = self.call(&Request::Predict {
            key: key.to_owned(),
            hv: hv.clone(),
        })?;
        response
            .as_prediction()
            .ok_or_else(|| Self::unexpected(&response))
    }

    /// Predicts a batch of keyed, encoded queries, answered in order.
    ///
    /// # Errors
    ///
    /// Returns `io::Error` on transport failure or a server-side error.
    pub fn predict_batch(
        &mut self,
        pairs: Vec<(String, BinaryHypervector)>,
    ) -> io::Result<Vec<Prediction>> {
        let response = self.call(&Request::PredictBatch { pairs })?;
        match response {
            Response::Labels { predictions } => Ok(predictions
                .into_iter()
                .map(|(label, generation)| Prediction {
                    label: label as usize,
                    generation,
                })
                .collect()),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Stores an encoded hypervector under `key`; `true` if an entry was
    /// replaced.
    ///
    /// # Errors
    ///
    /// Returns `io::Error` on transport failure or a server-side error.
    pub fn insert(&mut self, key: &str, hv: &BinaryHypervector) -> io::Result<bool> {
        match self.call(&Request::Insert {
            key: key.to_owned(),
            hv: hv.clone(),
        })? {
            Response::Inserted { replaced } => Ok(replaced),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Removes a stored entry; `true` if the key was stored.
    ///
    /// # Errors
    ///
    /// Returns `io::Error` on transport failure or a server-side error.
    pub fn remove(&mut self, key: &str) -> io::Result<bool> {
        match self.call(&Request::Remove {
            key: key.to_owned(),
        })? {
            Response::Removed { removed } => Ok(removed),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Enqueues one encoded training observation.
    ///
    /// # Errors
    ///
    /// Returns `io::Error` on transport failure or a server-side error.
    pub fn fit(&mut self, hv: &BinaryHypervector, label: usize) -> io::Result<()> {
        match self.call(&Request::Fit {
            label: u32::try_from(label)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "label exceeds u32"))?,
            hv: hv.clone(),
        })? {
            Response::FitAck => Ok(()),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Forces a new class-vector generation, returning its id.
    ///
    /// # Errors
    ///
    /// Returns `io::Error` on transport failure or a server-side error.
    pub fn refresh(&mut self) -> io::Result<u64> {
        match self.call(&Request::Refresh)? {
            Response::Refreshed { generation } => Ok(generation),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Adds a shard, returning its id.
    ///
    /// # Errors
    ///
    /// Returns `io::Error` on transport failure or a server-side error.
    pub fn add_shard(&mut self) -> io::Result<usize> {
        match self.call(&Request::AddShard)? {
            Response::ShardAdded { id } => Ok(id as usize),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Removes a shard; `false` for an unknown id or the last shard.
    ///
    /// # Errors
    ///
    /// Returns `io::Error` on transport failure or a server-side error.
    pub fn remove_shard(&mut self, id: usize) -> io::Result<bool> {
        match self.call(&Request::RemoveShard {
            id: u32::try_from(id)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "id exceeds u32"))?,
        })? {
            Response::ShardRemoved { removed } => Ok(removed),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Snapshots the runtime's statistics.
    ///
    /// # Errors
    ///
    /// Returns `io::Error` on transport failure or a server-side error.
    pub fn stats(&mut self) -> io::Result<RuntimeStats> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Predicts one keyed, encoded query's real-valued label — the
    /// regression twin of [`predict`](Self::predict).
    ///
    /// # Errors
    ///
    /// Returns `io::Error` on transport failure or a server-side error
    /// (including a task mismatch on a classification runtime).
    pub fn predict_value(
        &mut self,
        key: &str,
        hv: &BinaryHypervector,
    ) -> io::Result<ValuePrediction> {
        let response = self.call(&Request::PredictValue {
            key: key.to_owned(),
            hv: hv.clone(),
        })?;
        response
            .as_value_prediction()
            .ok_or_else(|| Self::unexpected(&response))
    }

    /// Enqueues one encoded `(query, value)` training observation.
    ///
    /// # Errors
    ///
    /// Returns `io::Error` on transport failure or a server-side error.
    pub fn fit_value(&mut self, hv: &BinaryHypervector, value: f64) -> io::Result<()> {
        match self.call(&Request::FitValue {
            value,
            hv: hv.clone(),
        })? {
            Response::FitAck => Ok(()),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Probes liveness without issuing a prediction: returns
    /// `(generation, uptime_us)` straight from the connection handler —
    /// nothing enters the dispatcher queue, so load balancers can poll
    /// this at any rate.
    ///
    /// # Errors
    ///
    /// Returns `io::Error` on transport failure, or a server-side error
    /// once the runtime behind the server has shut down (or its
    /// dispatcher died) — the unhealthy signal the probe exists for.
    pub fn ping(&mut self) -> io::Result<(u64, u64)> {
        match self.call(&Request::Ping)? {
            Response::Pong {
                generation,
                uptime_us,
            } => Ok((generation, uptime_us)),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Predicts a batch of keyed, encoded queries' real-valued labels,
    /// answered in order — the regression twin of
    /// [`predict_batch`](Self::predict_batch).
    ///
    /// # Errors
    ///
    /// Returns `io::Error` on transport failure or a server-side error.
    pub fn predict_value_batch(
        &mut self,
        pairs: Vec<(String, BinaryHypervector)>,
    ) -> io::Result<Vec<ValuePrediction>> {
        let response = self.call(&Request::PredictValueBatch { pairs })?;
        match response {
            Response::Values { predictions } => Ok(predictions
                .into_iter()
                .map(|(value, generation)| ValuePrediction { value, generation })
                .collect()),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Streams the serving process's full state as a [`Snapshot`] — the
    /// donor half of a warm shard join.
    ///
    /// # Errors
    ///
    /// Returns `io::Error` on transport failure, a server-side error or an
    /// undecodable snapshot stream.
    pub fn snapshot(&mut self) -> io::Result<Snapshot> {
        match self.call(&Request::Snapshot)? {
            Response::Snapshot { bytes } => Snapshot::from_bytes(&bytes)
                .map_err(|error| io::Error::new(io::ErrorKind::InvalidData, error.to_string())),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Streams a [`Snapshot`] into the serving process (trainer state
    /// adopted, items merged), returning the id of the generation
    /// published from it — the receiving half of a warm shard join.
    ///
    /// # Errors
    ///
    /// Returns `io::Error` on transport failure or a server-side error
    /// (including a spec mismatch).
    pub fn restore(&mut self, snapshot: &Snapshot) -> io::Result<u64> {
        match self.call(&Request::Restore {
            snapshot: snapshot.to_bytes(),
        })? {
            Response::Restored { generation } => Ok(generation),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Asks a cluster router to warm-join the shard process at `addr`,
    /// returning `(assigned id, items moved onto it)`. Shard runtimes
    /// refuse this op.
    ///
    /// # Errors
    ///
    /// Returns `io::Error` on transport failure or a server-side error.
    pub fn shard_join(&mut self, addr: &str) -> io::Result<(usize, u64)> {
        match self.call(&Request::ShardJoin {
            addr: addr.to_owned(),
        })? {
            Response::ShardJoined { id, moved } => Ok((id as usize, moved)),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Asks a cluster router to drain and drop shard `id`, returning
    /// `(removed, items re-inserted through the ring)`.
    ///
    /// # Errors
    ///
    /// Returns `io::Error` on transport failure or a server-side error.
    pub fn shard_leave(&mut self, id: usize) -> io::Result<(bool, u64)> {
        match self.call(&Request::ShardLeave {
            id: u32::try_from(id)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "id exceeds u32"))?,
        })? {
            Response::ShardLeft { removed, drained } => Ok((removed, drained)),
            other => Err(Self::unexpected(&other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Basis, Enc, Pipeline, Runtime, RuntimeConfig};
    use hdc_encode::Radians;

    #[test]
    fn loopback_smoke_predict_insert_stats() {
        let mut model = Pipeline::builder(256)
            .seed(2)
            .classes(2)
            .basis(Basis::Circular { m: 24, r: 0.0 })
            .encoder(Enc::angle())
            .build()
            .unwrap();
        let hours: Vec<Radians> = (0..24)
            .map(|h| Radians::periodic(f64::from(h), 24.0))
            .collect();
        let labels: Vec<usize> = (0..24).map(|h| usize::from(h >= 12)).collect();
        model.fit_batch(&hours, &labels).unwrap();
        let queries: Vec<BinaryHypervector> = hours.iter().map(|h| model.encode(h)).collect();
        let expected: Vec<usize> = hours.iter().map(|h| model.predict(h)).collect();

        let runtime = Runtime::spawn(model, RuntimeConfig::default()).unwrap();
        let server = Server::spawn("127.0.0.1:0", runtime.handle()).unwrap();
        let mut client = BlockingClient::connect(server.local_addr()).unwrap();

        for (query, &label) in queries.iter().zip(&expected) {
            assert_eq!(client.predict("station", query).unwrap().label, label);
        }
        assert!(!client.insert("station", &queries[0]).unwrap());
        assert!(client.insert("station", &queries[1]).unwrap());
        assert!(client.remove("station").unwrap());
        assert!(!client.remove("station").unwrap());
        // A bad request gets an error response; the connection survives.
        let narrow = BinaryHypervector::zeros(64);
        assert!(client.predict("station", &narrow).is_err());
        let stats = client.stats().unwrap();
        assert_eq!(stats.dim, 256);
        assert_eq!(stats.metrics.requests, 24);

        // The health probe answers while the runtime lives…
        let (generation, uptime_us) = client.ping().unwrap();
        assert_eq!(generation, 0);
        assert!(uptime_us > 0);
        // …and turns unhealthy the moment the runtime is gone, even though
        // the server (and its Arc'd generation/uptime state) is still up —
        // a load balancer must never keep a dead backend in rotation.
        runtime.shutdown();
        assert!(client.ping().is_err(), "ping must fail after shutdown");
        server.shutdown();
    }

    #[test]
    fn backoff_schedule_doubles_caps_and_jitters_deterministically() {
        let config = ClientConfig {
            retry_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_millis(200),
            ..ClientConfig::default()
        };
        for seed in [0u64, 1, 7, 0xDEAD_BEEF] {
            for attempt in 1u32..=64 {
                let uncapped = Duration::from_millis(25)
                    .saturating_mul(1u32 << attempt.saturating_sub(1).min(30));
                let window = uncapped.min(config.max_backoff);
                let delay = config.backoff_delay(attempt, seed);
                // Jitter lands in the upper half of the capped window…
                assert!(delay <= window, "attempt {attempt}: {delay:?} > {window:?}");
                assert!(
                    delay >= window / 2,
                    "attempt {attempt}: {delay:?} < {:?}",
                    window / 2
                );
                // …and is a pure function of (config, attempt, seed).
                assert_eq!(delay, config.backoff_delay(attempt, seed));
            }
        }
        // From attempt 4 on (25 → 50 → 100 → 200) the cap holds the
        // window flat: every later delay stays within [100ms, 200ms].
        for attempt in 4u32..=1000 {
            let delay = config.backoff_delay(attempt, 3);
            assert!(delay >= Duration::from_millis(100) && delay <= Duration::from_millis(200));
        }
        // Different seeds decorrelate: across a few attempts at least one
        // delay must differ between two processes.
        let schedules: Vec<Vec<Duration>> = [11u64, 22]
            .iter()
            .map(|&seed| (1..=6).map(|a| config.backoff_delay(a, seed)).collect())
            .collect();
        assert_ne!(schedules[0], schedules[1], "jitter must depend on the seed");
        // Degenerate configs stay sane.
        let zero = ClientConfig {
            retry_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            ..ClientConfig::default()
        };
        assert_eq!(zero.backoff_delay(1, 9), Duration::ZERO);
    }
}
