//! The long-running serving runtime: micro-batching ingestion over an MPSC
//! work queue, versioned online learning with atomically swapped
//! class-vector generations, and live [`metrics`](crate::metrics).
//!
//! A [`Runtime`] owns two background threads:
//!
//! * the **dispatcher** exclusively owns the [`ShardedModel`] and drains the
//!   work queue, coalescing concurrent keyed predictions into one
//!   [`HypervectorBatch`] by a deadline-or-size [`BatchPolicy`] — so encode,
//!   ring routing and the minipool fan-out are paid once per micro-batch
//!   instead of once per caller;
//! * the **trainer** folds `fit` observations into per-class
//!   [`MajorityAccumulator`](hdc_core::MajorityAccumulator)s
//!   (via [`CentroidTrainer`]) off the serving path and periodically
//!   publishes an immutable, `Arc`-snapshotted [`Generation`] of finalized
//!   class-vectors. The dispatcher adopts the newest generation at each
//!   micro-batch boundary, swapping it across all shards at once — readers
//!   never block on training, never observe a torn mix of two generations,
//!   and every [`Prediction`] reports the generation that served it.
//!
//! ```
//! use hdc_serve::{Basis, Enc, Pipeline, Radians, Runtime, RuntimeConfig};
//!
//! let mut model = Pipeline::builder(2_048)
//!     .seed(9)
//!     .basis(Basis::Circular { m: 24, r: 0.0 })
//!     .encoder(Enc::angle())
//!     .build()?;
//! let hours: Vec<Radians> = (0..24).map(|h| Radians::periodic(h as f64, 24.0)).collect();
//! let labels: Vec<usize> = (0..24).map(|h| usize::from(h >= 12)).collect();
//! model.fit_batch(&hours, &labels)?;
//!
//! let runtime = Runtime::spawn(model, RuntimeConfig::default())?;
//! let handle = runtime.handle();
//! let prediction = handle.predict("sensor-3", &Radians::periodic(3.0, 24.0))?;
//! assert_eq!(prediction.label, 0);
//! assert_eq!(prediction.generation, 0);
//! runtime.shutdown();
//! # Ok::<(), hdc_serve::HdcError>(())
//! ```

use std::borrow::Borrow;
use std::fmt;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, RwLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use hdc_core::{BinaryHypervector, HdcError, HypervectorBatch, TieBreak};
use hdc_learn::{CentroidClassifier, CentroidTrainer};

use crate::metrics::ServeMetrics;
use crate::pipeline::DynEncoder;
use crate::sharded::RingConfig;
use crate::{Model, ShardedModel};

/// When a micro-batch closes: at `max_batch` pending predictions, or
/// `max_wait` after the first one arrived — whichever comes first. A lone
/// request on an idle queue therefore waits at most `max_wait`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Maximum predictions coalesced into one batch (`>= 1`; `0` is
    /// clamped to `1`).
    pub max_batch: usize,
    /// Maximum time the dispatcher holds an open batch waiting for more
    /// requests.
    pub max_wait: Duration,
}

impl Default for BatchPolicy {
    /// 64 requests or 500 µs, whichever fills first.
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_wait: Duration::from_micros(500),
        }
    }
}

/// Configuration of a [`Runtime`]: fleet geometry plus ingestion and
/// online-learning policy.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Number of item-memory shards (`>= 1`).
    pub shards: usize,
    /// Geometry of the consistent-hash ring.
    pub ring: RingConfig,
    /// Seed of the ring's circular routing basis.
    pub seed: u64,
    /// Micro-batching policy of the ingestion queue.
    pub policy: BatchPolicy,
    /// Observations between automatic generation publishes; `0` publishes
    /// only on explicit [`RuntimeHandle::refresh`].
    pub refresh_every: usize,
}

impl Default for RuntimeConfig {
    /// One shard, default ring and batch policy, a new generation every 256
    /// observations.
    fn default() -> Self {
        Self {
            shards: 1,
            ring: RingConfig::default(),
            seed: 0,
            policy: BatchPolicy::default(),
            refresh_every: 256,
        }
    }
}

/// One served prediction: the label plus the id of the class-vector
/// [`Generation`] that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// The predicted class label.
    pub label: usize,
    /// The generation of class-vectors that answered (monotonically
    /// increasing across online refreshes; `0` is the classifier the
    /// runtime was spawned with).
    pub generation: u64,
}

/// An immutable snapshot of one class-vector generation: the finalized
/// classifier behind an `Arc`, tagged with its publish ordinal. Cloning is
/// a reference-count bump; the class-vectors themselves are never mutated
/// after publish, so any thread holding a `Generation` sees a complete,
/// self-consistent classifier.
#[derive(Debug, Clone)]
pub struct Generation {
    id: u64,
    classifier: Arc<CentroidClassifier>,
}

impl Generation {
    /// The publish ordinal (0 = the spawn-time classifier).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The finalized classifier of this generation.
    #[must_use]
    pub fn classifier(&self) -> &CentroidClassifier {
        &self.classifier
    }
}

/// The swap point between the trainer (writer) and everyone else (readers):
/// a single `RwLock<Generation>` held only for the pointer swap — the
/// expensive finalization happens off-lock, so readers are never blocked on
/// training work.
#[derive(Debug)]
struct GenerationCell {
    current: RwLock<Generation>,
}

impl GenerationCell {
    fn new(classifier: Arc<CentroidClassifier>) -> Self {
        Self {
            current: RwLock::new(Generation { id: 0, classifier }),
        }
    }

    fn load(&self) -> Generation {
        self.current
            .read()
            .expect("generation lock never poisons")
            .clone()
    }

    fn publish(&self, classifier: Arc<CentroidClassifier>) -> u64 {
        let mut current = self.current.write().expect("generation lock never poisons");
        current.id += 1;
        current.classifier = classifier;
        current.id
    }
}

/// A prediction/fit payload: either a raw input (encoded by the dispatcher,
/// amortized across the whole micro-batch) or an already encoded
/// hypervector (e.g. arriving over the wire).
enum Payload<O> {
    Input(O),
    Encoded(BinaryHypervector),
}

struct PredictJob<O> {
    key: String,
    payload: Payload<O>,
    enqueued: Instant,
    index: usize,
    reply: Sender<(usize, Prediction)>,
}

enum Work<O> {
    Predict(PredictJob<O>),
    Insert {
        key: String,
        hv: BinaryHypervector,
        reply: Sender<bool>,
    },
    Remove {
        key: String,
        reply: Sender<bool>,
    },
    Fit {
        payload: Payload<O>,
        label: usize,
    },
    Refresh {
        reply: Sender<u64>,
    },
    AddShard {
        reply: Sender<usize>,
    },
    RemoveShard {
        id: usize,
        reply: Sender<bool>,
    },
    Stats {
        reply: Sender<RuntimeStats>,
    },
    Shutdown,
}

enum TrainerMsg {
    Observe { hv: BinaryHypervector, label: usize },
    Refresh { reply: Option<Sender<u64>> },
    Stop,
}

/// A point-in-time view of the whole runtime, served by the `stats`
/// operation: generation, fleet shape, per-shard load, remap behaviour and
/// the ingestion metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeStats {
    /// The currently published class-vector generation.
    pub generation: u64,
    /// Query dimensionality `d`.
    pub dim: u64,
    /// Number of classes of the published classifier.
    pub classes: u64,
    /// Per-shard `(shard id, stored entries)` in creation order.
    pub shard_loads: Vec<(u64, u64)>,
    /// Total stored item-memory entries.
    pub keys: u64,
    /// Fraction of entries moved by the most recent shard churn (`None`
    /// before any reshard touched data).
    pub last_remap_fraction: Option<f64>,
    /// Ingestion counters and distributions.
    pub metrics: crate::MetricsSnapshot,
}

/// The long-running serving process: owns the dispatcher and trainer
/// threads. Obtain cloneable [`RuntimeHandle`]s with
/// [`handle`](Self::handle); stop (and recover the final fleet and trainer
/// state) with [`shutdown`](Self::shutdown).
pub struct Runtime<X: ?Sized + ToOwned> {
    handle: RuntimeHandle<X>,
    dispatcher: JoinHandle<ShardedModel<String>>,
    trainer: JoinHandle<CentroidTrainer>,
}

impl<X: ?Sized + ToOwned> fmt::Debug for Runtime<X> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runtime")
            .field("dim", &self.handle.dim)
            .field("classes", &self.handle.classes)
            .finish()
    }
}

impl<X> Runtime<X>
where
    X: ?Sized + ToOwned + Sync + 'static,
    X::Owned: Send + 'static,
{
    /// Spawns the runtime around a trained [`Model`]: the model's classifier
    /// is replicated onto `config.shards` shards (generation 0), its trainer
    /// state seeds the online trainer, and its encoder moves to the
    /// dispatcher for batched server-side encoding.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError`] for an invalid shard count or ring geometry.
    pub fn spawn(model: Model<X>, config: RuntimeConfig) -> Result<Self, HdcError> {
        let (dim, encoder, trainer, classifier) = model.into_parts();
        let classes = trainer.classes();
        let fleet = ShardedModel::with_ring(
            classifier.clone(),
            dim,
            config.shards,
            config.ring,
            config.seed,
        )?;
        let policy = BatchPolicy {
            max_batch: config.policy.max_batch.max(1),
            max_wait: config.policy.max_wait,
        };
        let metrics = Arc::new(ServeMetrics::new(policy.max_batch));
        let generations = Arc::new(GenerationCell::new(Arc::new(classifier)));

        let (work_tx, work_rx) = mpsc::channel::<Work<X::Owned>>();
        let (trainer_tx, trainer_rx) = mpsc::channel::<TrainerMsg>();

        let dispatcher = {
            let metrics = Arc::clone(&metrics);
            let generations = Arc::clone(&generations);
            let trainer_tx = trainer_tx.clone();
            thread::Builder::new()
                .name("hdc-serve-dispatch".into())
                .spawn(move || {
                    dispatcher_loop(
                        work_rx,
                        fleet,
                        encoder,
                        policy,
                        metrics,
                        generations,
                        trainer_tx,
                    )
                })
                .expect("spawning the dispatcher thread")
        };
        let trainer_thread = {
            let metrics = Arc::clone(&metrics);
            let generations = Arc::clone(&generations);
            thread::Builder::new()
                .name("hdc-serve-train".into())
                .spawn(move || {
                    trainer_loop(
                        trainer_rx,
                        trainer,
                        generations,
                        config.refresh_every,
                        metrics,
                    )
                })
                .expect("spawning the trainer thread")
        };

        Ok(Self {
            handle: RuntimeHandle {
                work_tx,
                trainer_tx,
                generations,
                metrics,
                dim,
                classes,
            },
            dispatcher,
            trainer: trainer_thread,
        })
    }

    /// A cloneable ingestion handle. Handles stay valid until
    /// [`shutdown`](Self::shutdown); afterwards every call returns
    /// [`HdcError::ServiceUnavailable`].
    #[must_use]
    pub fn handle(&self) -> RuntimeHandle<X> {
        self.handle.clone()
    }

    /// Stops both threads gracefully — queued work ahead of the shutdown
    /// marker is still served — and returns the final sharded fleet and the
    /// accumulated trainer state (for persistence or warm restart); callers
    /// that only want to stop may ignore them.
    pub fn shutdown(self) -> (ShardedModel<String>, CentroidTrainer) {
        let _ = self.handle.work_tx.send(Work::Shutdown);
        let fleet = self.dispatcher.join().expect("dispatcher thread panicked");
        let _ = self.handle.trainer_tx.send(TrainerMsg::Stop);
        let trainer = self.trainer.join().expect("trainer thread panicked");
        (fleet, trainer)
    }
}

/// A cheap, cloneable client of a [`Runtime`]: every method is a blocking
/// RPC into the work queue (predictions are answered when their micro-batch
/// is served). Handles are `Send`, so any number of threads — or any number
/// of TCP connection handlers — can share one runtime.
pub struct RuntimeHandle<X: ?Sized + ToOwned> {
    work_tx: Sender<Work<X::Owned>>,
    trainer_tx: Sender<TrainerMsg>,
    generations: Arc<GenerationCell>,
    metrics: Arc<ServeMetrics>,
    dim: usize,
    classes: usize,
}

impl<X: ?Sized + ToOwned> Clone for RuntimeHandle<X> {
    fn clone(&self) -> Self {
        Self {
            work_tx: self.work_tx.clone(),
            trainer_tx: self.trainer_tx.clone(),
            generations: Arc::clone(&self.generations),
            metrics: Arc::clone(&self.metrics),
            dim: self.dim,
            classes: self.classes,
        }
    }
}

impl<X: ?Sized + ToOwned> fmt::Debug for RuntimeHandle<X> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RuntimeHandle")
            .field("dim", &self.dim)
            .field("classes", &self.classes)
            .finish()
    }
}

impl<X> RuntimeHandle<X>
where
    X: ?Sized + ToOwned + Sync + 'static,
    X::Owned: Send + 'static,
{
    /// Query dimensionality `d`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes the runtime was spawned with.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The currently published class-vector generation (snapshot; cheap).
    #[must_use]
    pub fn generation(&self) -> Generation {
        self.generations.load()
    }

    /// Predicts one raw input. The input is encoded server-side inside the
    /// micro-batch's parallel encode pass. Blocks until the batch is
    /// served.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::ServiceUnavailable`] after shutdown.
    pub fn predict(&self, key: impl Into<String>, input: &X) -> Result<Prediction, HdcError> {
        self.submit_predicts(vec![(key.into(), Payload::Input(input.to_owned()))])
            .map(|mut labels| labels.pop().expect("one prediction per request"))
    }

    /// Predicts one already encoded query.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] for a wrong-width query and
    /// [`HdcError::ServiceUnavailable`] after shutdown.
    pub fn predict_encoded(
        &self,
        key: impl Into<String>,
        hv: BinaryHypervector,
    ) -> Result<Prediction, HdcError> {
        self.check_dim(hv.dim())?;
        self.submit_predicts(vec![(key.into(), Payload::Encoded(hv))])
            .map(|mut labels| labels.pop().expect("one prediction per request"))
    }

    /// Predicts a set of raw inputs, in order. The requests enter the same
    /// queue as everyone else's — the dispatcher is free to coalesce them
    /// with concurrent callers or split them across micro-batches (each
    /// prediction reports the generation that served it).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::ServiceUnavailable`] after shutdown.
    pub fn predict_many<'a, I>(&self, inputs: I) -> Result<Vec<Prediction>, HdcError>
    where
        I: IntoIterator<Item = (String, &'a X)>,
        X: 'a,
    {
        self.submit_predicts(
            inputs
                .into_iter()
                .map(|(key, input)| (key, Payload::Input(input.to_owned())))
                .collect(),
        )
    }

    /// Predicts a set of already encoded queries, in order.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if any query's width differs
    /// from the runtime's and [`HdcError::ServiceUnavailable`] after
    /// shutdown.
    pub fn predict_encoded_many(
        &self,
        pairs: Vec<(String, BinaryHypervector)>,
    ) -> Result<Vec<Prediction>, HdcError> {
        for (_, hv) in &pairs {
            self.check_dim(hv.dim())?;
        }
        self.submit_predicts(
            pairs
                .into_iter()
                .map(|(key, hv)| (key, Payload::Encoded(hv)))
                .collect(),
        )
    }

    fn submit_predicts(
        &self,
        jobs: Vec<(String, Payload<X::Owned>)>,
    ) -> Result<Vec<Prediction>, HdcError> {
        let expected = jobs.len();
        if expected == 0 {
            return Ok(Vec::new());
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        let enqueued = Instant::now();
        for (index, (key, payload)) in jobs.into_iter().enumerate() {
            self.send_work(Work::Predict(PredictJob {
                key,
                payload,
                enqueued,
                index,
                reply: reply_tx.clone(),
            }))?;
        }
        drop(reply_tx);
        let mut predictions = vec![
            Prediction {
                label: 0,
                generation: 0
            };
            expected
        ];
        let mut received = 0;
        while received < expected {
            let (index, prediction) = reply_rx.recv().map_err(|_| HdcError::ServiceUnavailable)?;
            predictions[index] = prediction;
            received += 1;
        }
        Ok(predictions)
    }

    /// Stores an encoded hypervector under `key` on its owning shard.
    /// Returns `true` if a previous entry was replaced.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] for a wrong-width vector and
    /// [`HdcError::ServiceUnavailable`] after shutdown.
    pub fn insert(&self, key: impl Into<String>, hv: BinaryHypervector) -> Result<bool, HdcError> {
        self.check_dim(hv.dim())?;
        self.rpc(|reply| Work::Insert {
            key: key.into(),
            hv,
            reply,
        })
    }

    /// Removes a stored entry. Returns `true` if the key was stored.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::ServiceUnavailable`] after shutdown.
    pub fn remove(&self, key: impl Into<String>) -> Result<bool, HdcError> {
        self.rpc(|reply| Work::Remove {
            key: key.into(),
            reply,
        })
    }

    /// Enqueues one raw training observation. Encoding rides the
    /// dispatcher's next micro-batch; the observation is then folded into
    /// the online trainer in the background and becomes visible to
    /// predictions at the next generation publish. Fire-and-forget.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::LabelOutOfRange`] for an unknown label and
    /// [`HdcError::ServiceUnavailable`] after shutdown.
    pub fn fit(&self, input: &X, label: usize) -> Result<(), HdcError> {
        self.check_label(label)?;
        self.send_work(Work::Fit {
            payload: Payload::Input(input.to_owned()),
            label,
        })
    }

    /// Enqueues one already encoded training observation, straight to the
    /// background trainer (no dispatcher hop needed). Fire-and-forget.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`]/[`HdcError::LabelOutOfRange`]
    /// for invalid observations and [`HdcError::ServiceUnavailable`] after
    /// shutdown.
    pub fn fit_encoded(&self, hv: BinaryHypervector, label: usize) -> Result<(), HdcError> {
        self.check_dim(hv.dim())?;
        self.check_label(label)?;
        self.trainer_tx
            .send(TrainerMsg::Observe { hv, label })
            .map_err(|_| HdcError::ServiceUnavailable)
    }

    /// Forces the trainer to publish a new generation, returning its id.
    /// The request travels through the same work queue as `fit`, so every
    /// observation enqueued before `refresh` is included in the published
    /// generation; the dispatcher adopts it at the next micro-batch
    /// boundary, so a prediction issued after `refresh` returns reports
    /// this generation (or a later one).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::ServiceUnavailable`] after shutdown.
    pub fn refresh(&self) -> Result<u64, HdcError> {
        self.rpc(|reply| Work::Refresh { reply })
    }

    /// Adds a shard to the fleet (rebalancing stored entries), returning
    /// its id.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::ServiceUnavailable`] after shutdown.
    pub fn add_shard(&self) -> Result<usize, HdcError> {
        self.rpc(|reply| Work::AddShard { reply })
    }

    /// Removes a shard (redistributing its entries). Returns `false` for an
    /// unknown id or the last shard.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::ServiceUnavailable`] after shutdown.
    pub fn remove_shard(&self, id: usize) -> Result<bool, HdcError> {
        self.rpc(|reply| Work::RemoveShard { id, reply })
    }

    /// Snapshots the runtime's state and metrics.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::ServiceUnavailable`] after shutdown.
    pub fn stats(&self) -> Result<RuntimeStats, HdcError> {
        self.rpc(|reply| Work::Stats { reply })
    }

    fn rpc<R>(&self, make: impl FnOnce(Sender<R>) -> Work<X::Owned>) -> Result<R, HdcError> {
        let (reply_tx, reply_rx) = mpsc::channel();
        self.send_work(make(reply_tx))?;
        reply_rx.recv().map_err(|_| HdcError::ServiceUnavailable)
    }

    fn send_work(&self, work: Work<X::Owned>) -> Result<(), HdcError> {
        // Increment before the send so the dispatcher's matching decrement
        // (which can only happen after the send) never underflows.
        self.metrics.enqueued(1);
        self.work_tx.send(work).map_err(|_| {
            self.metrics.dequeued(1);
            HdcError::ServiceUnavailable
        })
    }

    fn check_dim(&self, found: usize) -> Result<(), HdcError> {
        if found != self.dim {
            return Err(HdcError::DimensionMismatch {
                expected: self.dim,
                found,
            });
        }
        Ok(())
    }

    fn check_label(&self, label: usize) -> Result<(), HdcError> {
        if label >= self.classes {
            return Err(HdcError::LabelOutOfRange {
                label,
                classes: self.classes,
            });
        }
        Ok(())
    }
}

/// One row of a micro-batch, borrowed from its pending job.
enum RowSource<'a, X: ?Sized> {
    Input(&'a X),
    Encoded(&'a BinaryHypervector),
}

/// Fills `batch` (already sized to `sources.len()`) from the row sources:
/// raw inputs are encoded, pre-encoded rows copied — one parallel pass over
/// disjoint chunks, bit-identical to the serial loop.
fn fill_batch<X: ?Sized + Sync>(
    encoder: &dyn DynEncoder<X>,
    sources: &[RowSource<'_, X>],
    batch: &mut HypervectorBatch,
) {
    if sources.is_empty() {
        return;
    }
    let rows_per_chunk = if sources.len() < minipool::MIN_PARALLEL_ITEMS {
        sources.len()
    } else {
        sources.len().div_ceil(minipool::max_threads())
    };
    let mut chunks: Vec<_> = batch.chunks_mut(rows_per_chunk).collect();
    minipool::par_fill_indexed(&mut chunks, |_, chunk| {
        for (row_index, mut row) in chunk.rows_mut() {
            match &sources[row_index] {
                RowSource::Input(input) => encoder.encode_into(input, row),
                RowSource::Encoded(hv) => row.copy_from(hv.view()),
            }
        }
    });
}

#[allow(clippy::too_many_lines)]
fn dispatcher_loop<X>(
    work_rx: Receiver<Work<X::Owned>>,
    mut fleet: ShardedModel<String>,
    encoder: Box<dyn DynEncoder<X>>,
    policy: BatchPolicy,
    metrics: Arc<ServeMetrics>,
    generations: Arc<GenerationCell>,
    trainer_tx: Sender<TrainerMsg>,
) -> ShardedModel<String>
where
    X: ?Sized + ToOwned + Sync + 'static,
    X::Owned: Send + 'static,
{
    let dim = fleet.dim();
    // Scratch arenas recycled across micro-batches (`resize_zeroed` keeps
    // the allocation): one for the predictions, one for fit observations
    // that ride the same parallel encode pass.
    let mut predict_scratch = HypervectorBatch::with_capacity(dim, policy.max_batch);
    let mut fit_scratch = HypervectorBatch::new(dim);
    let mut adopted = generations.load();

    let mut pending: Vec<PredictJob<X::Owned>> = Vec::new();
    let mut fits: Vec<(Payload<X::Owned>, usize)> = Vec::new();

    'runtime: loop {
        let Ok(work) = work_rx.recv() else {
            break 'runtime;
        };
        metrics.dequeued(1);
        // Anything that is not a prediction is handled immediately; a
        // prediction opens a micro-batch collection window.
        let mut stashed: Option<Work<X::Owned>> = None;
        match work {
            Work::Shutdown => break 'runtime,
            Work::Predict(job) => {
                pending.push(job);
                let deadline = Instant::now() + policy.max_wait;
                while pending.len() < policy.max_batch {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    match work_rx.recv_timeout(remaining) {
                        Ok(more) => {
                            metrics.dequeued(1);
                            match more {
                                Work::Predict(job) => pending.push(job),
                                // Fit observations ride the same encode
                                // pass as the batch they arrived with.
                                Work::Fit { payload, label } => fits.push((payload, label)),
                                // Any other op closes the batch; it is
                                // served first so queue order is preserved.
                                other => {
                                    stashed = Some(other);
                                    break;
                                }
                            }
                        }
                        Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                            break
                        }
                    }
                }
            }
            Work::Fit { payload, label } => fits.push((payload, label)),
            other => stashed = Some(other),
        }

        // --- Serve the collected micro-batch. ---------------------------
        if !pending.is_empty() || !fits.is_empty() {
            // Adopt the newest published generation at the batch boundary:
            // one swap covers every shard, so the whole batch — and every
            // reply in it — is served by exactly one generation.
            let published = generations.load();
            if published.id() != adopted.id() {
                fleet
                    .set_classifier(published.classifier().clone())
                    .expect("published generations share the runtime dimensionality");
                adopted = published;
            }

            predict_scratch.resize_zeroed(pending.len());
            let sources: Vec<RowSource<'_, X>> = pending
                .iter()
                .map(|job| match &job.payload {
                    Payload::Input(input) => RowSource::Input(input.borrow()),
                    Payload::Encoded(hv) => RowSource::Encoded(hv),
                })
                .collect();
            fill_batch(encoder.as_ref(), &sources, &mut predict_scratch);
            drop(sources);

            fit_scratch.resize_zeroed(fits.len());
            let fit_sources: Vec<RowSource<'_, X>> = fits
                .iter()
                .map(|(payload, _)| match payload {
                    Payload::Input(input) => RowSource::Input(input.borrow()),
                    Payload::Encoded(hv) => RowSource::Encoded(hv),
                })
                .collect();
            fill_batch(encoder.as_ref(), &fit_sources, &mut fit_scratch);
            drop(fit_sources);

            if !pending.is_empty() {
                let keys: Vec<&str> = pending.iter().map(|job| job.key.as_str()).collect();
                let labels = fleet
                    .predict_batch(&keys, &predict_scratch)
                    .expect("keys and rows are constructed in lockstep");
                let generation = adopted.id();
                let mut latencies = Vec::with_capacity(pending.len());
                for (job, label) in pending.drain(..).zip(labels) {
                    latencies.push(job.enqueued.elapsed());
                    let _ = job
                        .reply
                        .send((job.index, Prediction { label, generation }));
                }
                metrics.record_batch(latencies.len(), latencies);
            }
            for ((_, label), row) in fits.drain(..).zip(fit_scratch.rows()) {
                let _ = trainer_tx.send(TrainerMsg::Observe {
                    hv: row.to_hypervector(),
                    label,
                });
            }
        }

        // --- Then the control operation that closed it, if any. ---------
        match stashed {
            None => {}
            Some(Work::Insert { key, hv, reply }) => {
                let replaced = fleet.insert(key, hv).is_some();
                metrics.record_insert();
                let _ = reply.send(replaced);
            }
            Some(Work::Remove { key, reply }) => {
                let removed = fleet.remove(&key).is_some();
                metrics.record_remove();
                let _ = reply.send(removed);
            }
            Some(Work::Refresh { reply }) => {
                // Forwarded over the trainer channel *after* every fit this
                // dispatcher already relayed, so the published generation
                // includes them; the trainer answers the caller directly.
                let _ = trainer_tx.send(TrainerMsg::Refresh { reply: Some(reply) });
            }
            Some(Work::AddShard { reply }) => {
                let _ = reply.send(fleet.add_shard());
            }
            Some(Work::RemoveShard { id, reply }) => {
                let _ = reply.send(fleet.remove_shard(id));
            }
            Some(Work::Stats { reply }) => {
                let _ = reply.send(RuntimeStats {
                    generation: generations.load().id(),
                    dim: dim as u64,
                    classes: adopted.classifier().classes() as u64,
                    shard_loads: fleet
                        .shard_loads()
                        .into_iter()
                        .map(|(id, len)| (id as u64, len as u64))
                        .collect(),
                    keys: fleet.len() as u64,
                    last_remap_fraction: fleet.last_remap_fraction(),
                    metrics: metrics.snapshot(),
                });
            }
            Some(Work::Shutdown) => break 'runtime,
            Some(Work::Predict(_)) | Some(Work::Fit { .. }) => {
                unreachable!("predictions and fits are collected, never stashed")
            }
        }
    }
    fleet
}

fn trainer_loop(
    rx: Receiver<TrainerMsg>,
    mut trainer: CentroidTrainer,
    generations: Arc<GenerationCell>,
    refresh_every: usize,
    metrics: Arc<ServeMetrics>,
) -> CentroidTrainer {
    let mut since_publish = 0usize;
    loop {
        match rx.recv() {
            Err(_) | Ok(TrainerMsg::Stop) => break,
            Ok(TrainerMsg::Observe { hv, label }) => {
                trainer
                    .observe(&hv, label)
                    .expect("labels are validated at the handle");
                metrics.record_fit();
                since_publish += 1;
                if refresh_every > 0 && since_publish >= refresh_every {
                    publish(&trainer, &generations);
                    since_publish = 0;
                }
            }
            Ok(TrainerMsg::Refresh { reply }) => {
                let id = publish(&trainer, &generations);
                since_publish = 0;
                if let Some(reply) = reply {
                    let _ = reply.send(id);
                }
            }
        }
    }
    trainer
}

/// Finalizes the trainer's accumulators **off-lock** into an immutable
/// classifier and swaps it in as the next generation.
fn publish(trainer: &CentroidTrainer, generations: &GenerationCell) -> u64 {
    let classifier = Arc::new(trainer.finish_deterministic(TieBreak::Alternate));
    generations.publish(classifier)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Basis, Enc, Pipeline};
    use hdc_encode::Radians;

    fn trained_model(dim: usize, seed: u64) -> Model<Radians> {
        let mut model = Pipeline::builder(dim)
            .seed(seed)
            .classes(2)
            .basis(Basis::Circular { m: 24, r: 0.0 })
            .encoder(Enc::angle())
            .build()
            .unwrap();
        let hours: Vec<Radians> = (0..48)
            .map(|i| Radians::periodic(f64::from(i) / 2.0, 24.0))
            .collect();
        let labels: Vec<usize> = (0..48).map(|i| usize::from(i >= 24)).collect();
        model.fit_batch(&hours, &labels).unwrap();
        model
    }

    fn config(shards: usize, max_batch: usize) -> RuntimeConfig {
        RuntimeConfig {
            shards,
            policy: BatchPolicy {
                max_batch,
                max_wait: Duration::from_micros(200),
            },
            refresh_every: 0,
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn runtime_predictions_match_the_direct_model() {
        let model = trained_model(512, 3);
        let inputs: Vec<Radians> = (0..40)
            .map(|i| Radians::periodic(f64::from(i) * 0.6, 24.0))
            .collect();
        let expected = model.predict_batch(&inputs);
        let encoded = model.encode_batch(&inputs);

        let runtime = Runtime::spawn(trained_model(512, 3), config(3, 8)).unwrap();
        let handle = runtime.handle();
        assert_eq!(handle.dim(), 512);
        assert_eq!(handle.classes(), 2);

        // Typed single predictions (server-side encode)…
        for (input, &label) in inputs.iter().zip(&expected) {
            let p = handle.predict("k", input).unwrap();
            assert_eq!(p.label, label);
            assert_eq!(p.generation, 0);
        }
        // …typed many (one queue burst, coalesced into micro-batches)…
        let many = handle
            .predict_many(inputs.iter().enumerate().map(|(i, x)| (format!("k{i}"), x)))
            .unwrap();
        assert_eq!(many.iter().map(|p| p.label).collect::<Vec<_>>(), expected);
        // …and pre-encoded rows.
        let pairs: Vec<(String, BinaryHypervector)> = encoded
            .rows()
            .enumerate()
            .map(|(i, row)| (format!("k{i}"), row.to_hypervector()))
            .collect();
        let served = handle.predict_encoded_many(pairs).unwrap();
        assert_eq!(served.iter().map(|p| p.label).collect::<Vec<_>>(), expected);

        let stats = handle.stats().unwrap();
        assert_eq!(stats.dim, 512);
        assert_eq!(stats.classes, 2);
        assert_eq!(stats.shard_loads.len(), 3);
        assert!(stats.metrics.requests >= 120);
        assert!(stats.metrics.batches >= 1);
        assert!(stats.metrics.mean_batch_size >= 1.0);
        runtime.shutdown();
    }

    #[test]
    fn inserts_removes_and_shard_churn_round_trip() {
        let model = trained_model(256, 5);
        let hv = model.encode(&Radians(1.0));
        let runtime = Runtime::spawn(model, config(2, 4)).unwrap();
        let handle = runtime.handle();

        assert!(!handle.insert("profile", hv.clone()).unwrap());
        assert!(handle.insert("profile", hv.clone()).unwrap());
        let added = handle.add_shard().unwrap();
        assert!(handle.remove_shard(added).unwrap());
        assert!(!handle.remove_shard(999).unwrap());
        assert!(handle.remove("profile").unwrap());
        assert!(!handle.remove("profile").unwrap());
        assert!(matches!(
            handle.insert("p", BinaryHypervector::zeros(128)),
            Err(HdcError::DimensionMismatch { .. })
        ));

        let (fleet, _trainer) = runtime.shutdown();
        assert!(fleet.is_empty());
        assert!(matches!(
            handle.remove("profile"),
            Err(HdcError::ServiceUnavailable)
        ));
        assert!(matches!(
            handle.predict("k", &Radians(0.5)),
            Err(HdcError::ServiceUnavailable)
        ));
        assert!(matches!(handle.stats(), Err(HdcError::ServiceUnavailable)));
    }

    #[test]
    fn online_fits_publish_monotonic_generations_that_change_predictions() {
        // Start from an untrained model; the first generation of online
        // observations must teach it the day/night split.
        let blank = Pipeline::builder(512)
            .seed(7)
            .classes(2)
            .basis(Basis::Circular { m: 24, r: 0.0 })
            .encoder(Enc::angle())
            .build()
            .unwrap();
        let runtime = Runtime::spawn(blank, config(1, 4)).unwrap();
        let handle = runtime.handle();
        assert_eq!(handle.generation().id(), 0);

        let hours: Vec<Radians> = (0..48)
            .map(|i| Radians::periodic(f64::from(i) / 2.0, 24.0))
            .collect();
        for (i, hour) in hours.iter().enumerate() {
            handle.fit(hour, usize::from(i >= 24)).unwrap();
        }
        let generation = handle.refresh().unwrap();
        assert_eq!(generation, 1);
        assert_eq!(handle.generation().id(), 1);
        assert!(handle.refresh().unwrap() > generation, "ids are monotonic");

        let morning = handle.predict("a", &Radians::periodic(3.0, 24.0)).unwrap();
        let evening = handle.predict("b", &Radians::periodic(21.0, 24.0)).unwrap();
        assert_eq!(morning.label, 0);
        assert_eq!(evening.label, 1);
        assert_eq!(morning.generation, 2);

        // The recovered trainer saw all 48 observations.
        let (_, trainer) = runtime.shutdown();
        assert_eq!(trainer.counts(), &[24, 24]);
        assert!(matches!(
            handle.fit(&Radians(0.1), 0),
            Err(HdcError::ServiceUnavailable)
        ));
        assert!(matches!(
            handle.refresh(),
            Err(HdcError::ServiceUnavailable)
        ));
    }

    #[test]
    fn handle_validates_before_enqueueing() {
        let runtime = Runtime::spawn(trained_model(256, 1), config(1, 4)).unwrap();
        let handle = runtime.handle();
        assert!(matches!(
            handle.predict_encoded("k", BinaryHypervector::zeros(64)),
            Err(HdcError::DimensionMismatch {
                expected: 256,
                found: 64
            })
        ));
        assert!(matches!(
            handle.fit_encoded(BinaryHypervector::zeros(256), 9),
            Err(HdcError::LabelOutOfRange {
                label: 9,
                classes: 2
            })
        ));
        assert!(handle.predict_many(std::iter::empty()).unwrap().is_empty());
        runtime.shutdown();
    }

    #[test]
    fn queue_depth_settles_back_to_zero() {
        let runtime = Runtime::spawn(trained_model(256, 2), config(1, 16)).unwrap();
        let handle = runtime.handle();
        let inputs: Vec<Radians> = (0..64).map(|i| Radians(f64::from(i) * 0.1)).collect();
        let _ = handle
            .predict_many(inputs.iter().enumerate().map(|(i, x)| (format!("k{i}"), x)))
            .unwrap();
        let stats = handle.stats().unwrap();
        assert_eq!(stats.metrics.queue_depth, 0);
        assert_eq!(stats.metrics.requests, 64);
        runtime.shutdown();
    }
}
