//! The long-running serving runtime: micro-batching ingestion over an MPSC
//! work queue, versioned online learning with atomically swapped
//! generations, live [`metrics`](crate::metrics) — and, since PR 5, both
//! task families behind one queue plus durable warm restarts.
//!
//! A [`Runtime`] owns two background threads:
//!
//! * the **dispatcher** exclusively owns the [`ShardedModel`] and drains the
//!   work queue, coalescing concurrent keyed predictions (label *and* value
//!   predictions alike) into one [`HypervectorBatch`] by a deadline-or-size
//!   [`BatchPolicy`] — so encode, ring routing and the minipool fan-out are
//!   paid once per micro-batch instead of once per caller;
//! * the **trainer** folds `fit`/`fit_value` observations into the task's
//!   accumulators ([`CentroidTrainer`] or
//!   [`RegressionTrainer`](hdc_learn::RegressionTrainer)) off the serving
//!   path and periodically publishes an immutable, `Arc`-snapshotted
//!   [`Generation`] of the finalized [`Head`]. The dispatcher adopts the
//!   newest generation at each micro-batch boundary, swapping it across all
//!   shards at once — readers never block on training, never observe a torn
//!   mix of two generations, and every [`Prediction`]/[`ValuePrediction`]
//!   reports the generation that served it.
//!
//! # Warm restarts
//!
//! With [`RuntimeConfig::snapshot_on_shutdown`] set, [`Runtime::shutdown`]
//! writes a [`Snapshot`] (spec + trainer accumulators + item memories);
//! with [`RuntimeConfig::load_snapshot`] set, [`Runtime::spawn`] restores
//! that state before serving — so the restarted process answers
//! bit-identically to the one that shut down.
//!
//! ```
//! use hdc_serve::{Basis, Enc, Pipeline, Radians, Runtime, RuntimeConfig};
//!
//! let mut model = Pipeline::builder(2_048)
//!     .seed(9)
//!     .basis(Basis::Circular { m: 24, r: 0.0 })
//!     .encoder(Enc::angle())
//!     .build()?;
//! let hours: Vec<Radians> = (0..24).map(|h| Radians::periodic(h as f64, 24.0)).collect();
//! let labels: Vec<usize> = (0..24).map(|h| usize::from(h >= 12)).collect();
//! model.fit_batch(&hours, &labels)?;
//!
//! let runtime = Runtime::spawn(model, RuntimeConfig::default())?;
//! let handle = runtime.handle();
//! let prediction = handle.predict("sensor-3", &Radians::periodic(3.0, 24.0))?;
//! assert_eq!(prediction.label, 0);
//! assert_eq!(prediction.generation, 0);
//! runtime.shutdown();
//! # Ok::<(), hdc_serve::HdcError>(())
//! ```

use std::borrow::Borrow;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, RwLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use hdc_core::{BinaryHypervector, HdcError, HypervectorBatch, TieBreak};
use hdc_learn::{CentroidClassifier, CentroidTrainer, RegressionTrainer};
use hdc_store::{
    DurabilityConfig, GroupAck, GroupCommitWal, ItemStore, PagedStore, SnapshotInstaller, Store,
    SyncPolicy, WalRecord,
};

use crate::metrics::ServeMetrics;
use crate::pipeline::{DynEncoder, TaskState};
use crate::sharded::{Head, RingConfig};
use crate::snapshot::Snapshot;
use crate::spec::{PipelineSpec, Task};
use crate::{Model, ShardedModel};

/// When a micro-batch closes: at `max_batch` pending predictions, or
/// `max_wait` after the first one arrived — whichever comes first. A lone
/// request on an idle queue therefore waits at most `max_wait`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Maximum predictions coalesced into one batch (`>= 1`; `0` is
    /// clamped to `1`).
    pub max_batch: usize,
    /// Maximum time the dispatcher holds an open batch waiting for more
    /// requests.
    pub max_wait: Duration,
}

impl Default for BatchPolicy {
    /// 64 requests or 500 µs, whichever fills first.
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_wait: Duration::from_micros(500),
        }
    }
}

/// Configuration of a [`Runtime`]: fleet geometry, ingestion and
/// online-learning policy, plus the durability hooks. (`Clone`, not
/// `Copy`, since PR 5 — the snapshot paths own heap data.)
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Human-readable identity of this runtime, reported in the `stats`
    /// shard-identity section so a cluster router (or an operator) can
    /// tell shard processes apart. Empty by default.
    pub name: String,
    /// Number of item-memory shards (`>= 1`).
    pub shards: usize,
    /// Geometry of the consistent-hash ring.
    pub ring: RingConfig,
    /// Seed of the ring's circular routing basis.
    pub seed: u64,
    /// Micro-batching policy of the ingestion queue.
    pub policy: BatchPolicy,
    /// Observations between automatic generation publishes; `0` publishes
    /// only on explicit [`RuntimeHandle::refresh`].
    pub refresh_every: usize,
    /// Write a [`Snapshot`] (spec + trainer accumulators + item memories)
    /// to this path on [`Runtime::shutdown`]. Best-effort: a write failure
    /// is reported on stderr, never a panic mid-shutdown.
    pub snapshot_on_shutdown: Option<PathBuf>,
    /// Restore a previously written [`Snapshot`] from this path on
    /// [`Runtime::spawn`], making the restart warm. A missing file is a
    /// cold start (not an error); a present-but-incompatible snapshot
    /// (different spec) is an error.
    pub load_snapshot: Option<PathBuf>,
    /// Continuous durability (PR 8): a [`DurabilityConfig`] turns on the
    /// write-ahead log, periodic background snapshotting, and (when its
    /// `page_cache` is set) the paged file-backed item memory. At spawn the
    /// runtime recovers **bit-identically** to its last acknowledged state
    /// from the installed snapshot plus WAL replay — this composes with
    /// [`load_snapshot`](Self::load_snapshot), which seeds the model before
    /// the store's own recovery is applied on top. When durable,
    /// `fit`/`fit_value` (and `insert`/`remove`) acknowledge only after
    /// their log record is flushed per [`SyncPolicy`](hdc_store::SyncPolicy),
    /// and a storage
    /// failure on the logging path is fail-stop: the dispatcher panics
    /// rather than acknowledge a write it cannot recover.
    pub durability: Option<DurabilityConfig>,
}

impl Default for RuntimeConfig {
    /// One shard, default ring and batch policy, a new generation every 256
    /// observations, no durability hooks.
    fn default() -> Self {
        Self {
            name: String::new(),
            shards: 1,
            ring: RingConfig::default(),
            seed: 0,
            policy: BatchPolicy::default(),
            refresh_every: 256,
            snapshot_on_shutdown: None,
            load_snapshot: None,
            durability: None,
        }
    }
}

/// One served classification prediction: the label plus the id of the
/// [`Generation`] that produced it. (`Default` is the all-zero
/// placeholder reply collection seeds slots with before the dispatcher
/// answers.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Prediction {
    /// The predicted class label.
    pub label: usize,
    /// The generation that answered (monotonically increasing across
    /// online refreshes; `0` is the head the runtime was spawned with).
    pub generation: u64,
}

/// One served regression prediction: the real-valued label plus the id of
/// the [`Generation`] that produced it. (`Default` is the all-zero
/// placeholder reply collection seeds slots with before the dispatcher
/// answers.)
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ValuePrediction {
    /// The predicted value (a grid point of the spec's label range).
    pub value: f64,
    /// The generation that answered.
    pub generation: u64,
}

/// An immutable snapshot of one published generation: the finalized
/// [`Head`] behind an `Arc`, tagged with its publish ordinal. Cloning is a
/// reference-count bump; the head is never mutated after publish, so any
/// thread holding a `Generation` sees a complete, self-consistent model.
#[derive(Debug, Clone)]
pub struct Generation {
    id: u64,
    head: Arc<Head>,
}

impl Generation {
    /// The publish ordinal (0 = the spawn-time head).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The finalized head of this generation.
    #[must_use]
    pub fn head(&self) -> &Head {
        &self.head
    }

    /// The finalized classifier of this generation.
    ///
    /// # Panics
    ///
    /// Panics on a regression runtime's generation — use
    /// [`head`](Self::head).
    #[must_use]
    pub fn classifier(&self) -> &CentroidClassifier {
        match self.head.as_ref() {
            Head::Classes(classifier) => classifier,
            Head::Values(_) => {
                panic!("classifier() requires a classification generation, found regression")
            }
        }
    }
}

/// The swap point between the trainer (writer) and everyone else (readers):
/// a single `RwLock<Generation>` held only for the pointer swap — the
/// expensive finalization happens off-lock, so readers are never blocked on
/// training work.
#[derive(Debug)]
struct GenerationCell {
    current: RwLock<Generation>,
}

impl GenerationCell {
    fn new(head: Arc<Head>) -> Self {
        Self {
            current: RwLock::new(Generation { id: 0, head }),
        }
    }

    fn load(&self) -> Generation {
        self.current
            .read()
            .expect("generation lock never poisons")
            .clone()
    }

    fn publish(&self, head: Arc<Head>) -> u64 {
        let mut current = self.current.write().expect("generation lock never poisons");
        current.id += 1;
        current.head = head;
        current.id
    }
}

/// The online trainer state a runtime hands back on
/// [`shutdown`](Runtime::shutdown): the task's accumulators, for
/// persistence, inspection or warm restart.
#[derive(Debug, Clone)]
pub enum OnlineLearner {
    /// Classification accumulators.
    Classify(CentroidTrainer),
    /// Regression accumulators.
    Regress(RegressionTrainer),
}

impl OnlineLearner {
    /// The classification trainer, if this is a classification runtime.
    #[must_use]
    pub fn as_classify(&self) -> Option<&CentroidTrainer> {
        match self {
            OnlineLearner::Classify(trainer) => Some(trainer),
            OnlineLearner::Regress(_) => None,
        }
    }

    /// The regression trainer, if this is a regression runtime.
    #[must_use]
    pub fn as_regress(&self) -> Option<&RegressionTrainer> {
        match self {
            OnlineLearner::Regress(trainer) => Some(trainer),
            OnlineLearner::Classify(_) => None,
        }
    }

    /// Total observations folded in.
    #[must_use]
    pub fn observed(&self) -> usize {
        match self {
            OnlineLearner::Classify(trainer) => trainer.counts().iter().sum(),
            OnlineLearner::Regress(trainer) => trainer.observed(),
        }
    }

    /// Finalizes the current accumulators into a publishable [`Head`]
    /// (deterministic for both tasks).
    fn finish(&self) -> Head {
        match self {
            OnlineLearner::Classify(trainer) => {
                Head::Classes(trainer.finish_deterministic(TieBreak::Alternate))
            }
            OnlineLearner::Regress(trainer) => Head::Values(trainer.finish_integer()),
        }
    }
}

/// A prediction/fit payload: either a raw input (encoded by the dispatcher,
/// amortized across the whole micro-batch) or an already encoded
/// hypervector (e.g. arriving over the wire).
enum Payload<O> {
    Input(O),
    Encoded(BinaryHypervector),
}

struct PredictJob<O, R> {
    key: String,
    payload: Payload<O>,
    enqueued: Instant,
    index: usize,
    reply: Sender<(usize, R)>,
}

enum Work<O> {
    Predict(PredictJob<O, Prediction>),
    PredictValue(PredictJob<O, ValuePrediction>),
    Insert {
        key: String,
        hv: BinaryHypervector,
        reply: Sender<bool>,
    },
    Remove {
        key: String,
        reply: Sender<bool>,
    },
    Fit {
        payload: Payload<O>,
        label: usize,
        /// `Some` on a durable runtime: the dispatcher acknowledges after
        /// the observation's WAL record is flushed, `None` keeps the
        /// fire-and-forget fast path.
        ack: Option<Sender<()>>,
    },
    FitValue {
        payload: Payload<O>,
        value: f64,
        ack: Option<Sender<()>>,
    },
    Refresh {
        reply: Sender<u64>,
    },
    AddShard {
        reply: Sender<usize>,
    },
    RemoveShard {
        id: usize,
        reply: Sender<bool>,
    },
    Stats {
        reply: Sender<RuntimeStats>,
    },
    Snapshot {
        spec: PipelineSpec,
        reply: Sender<Snapshot>,
    },
    Restore {
        snapshot: Snapshot,
        reply: Sender<Result<u64, HdcError>>,
    },
    Shutdown,
}

enum TrainerMsg {
    Observe {
        hv: BinaryHypervector,
        label: usize,
    },
    ObserveValue {
        hv: BinaryHypervector,
        value: f64,
    },
    Refresh {
        reply: Option<Sender<u64>>,
    },
    /// Capture the trainer's accumulators (the dispatcher has already
    /// collected `items` from the fleet) into one consistent [`Snapshot`].
    Snapshot {
        spec: PipelineSpec,
        items: Vec<(String, BinaryHypervector)>,
        reply: Sender<Snapshot>,
    },
    /// Adopt a snapshot's accumulators and publish the rebuilt head as a
    /// new generation (the dispatcher has already adopted the items).
    Restore {
        snapshot: Snapshot,
        reply: Sender<Result<u64, HdcError>>,
    },
    Stop,
}

/// A point-in-time view of the whole runtime, served by the `stats`
/// operation: generation, uptime, fleet shape, per-shard load, remap
/// behaviour and the ingestion metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeStats {
    /// The currently published generation.
    pub generation: u64,
    /// Microseconds since the runtime spawned — so a load balancer can
    /// tell a fresh (cold-cache) runtime from a long-lived one without
    /// issuing a prediction.
    pub uptime_us: u64,
    /// The runtime's configured identity ([`RuntimeConfig::name`]; empty
    /// by default) — the shard-identity field a cluster router uses to
    /// tell shard processes apart.
    pub name: String,
    /// Number of ring positions each shard occupies on the consistent-hash
    /// ring ([`RingConfig::positions`]) — the rest of the shard-identity
    /// section (the item-memory key count is [`keys`](Self::keys)).
    pub ring_positions: u64,
    /// Query dimensionality `d`.
    pub dim: u64,
    /// Number of classes of the published head (`0` for a regression
    /// runtime, whose head has a label grid instead of a class set).
    pub classes: u64,
    /// Per-shard `(shard id, stored entries)` in creation order.
    pub shard_loads: Vec<(u64, u64)>,
    /// Total stored item-memory entries.
    pub keys: u64,
    /// Fraction of entries moved by the most recent shard churn (`None`
    /// before any reshard touched data).
    pub last_remap_fraction: Option<f64>,
    /// Ingestion counters and distributions.
    pub metrics: crate::MetricsSnapshot,
}

/// The long-running serving process: owns the dispatcher and trainer
/// threads. Obtain cloneable [`RuntimeHandle`]s with
/// [`handle`](Self::handle); stop (and recover the final fleet and trainer
/// state) with [`shutdown`](Self::shutdown).
pub struct Runtime<X: ?Sized + ToOwned> {
    handle: RuntimeHandle<X>,
    spec: PipelineSpec,
    snapshot_on_shutdown: Option<PathBuf>,
    dispatcher: JoinHandle<ShardedModel<String>>,
    trainer: JoinHandle<OnlineLearner>,
    snapshotter: Option<JoinHandle<()>>,
}

impl<X: ?Sized + ToOwned> fmt::Debug for Runtime<X> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runtime").field("spec", &self.spec).finish()
    }
}

impl<X> Runtime<X>
where
    X: ?Sized + ToOwned + Sync + 'static,
    X::Owned: Send + 'static,
{
    /// Spawns the runtime around a trained [`Model`]: the model's finalized
    /// head is replicated onto `config.shards` shards (generation 0), its
    /// trainer state seeds the online trainer, and its encoder moves to
    /// the dispatcher for batched server-side encoding.
    ///
    /// With [`RuntimeConfig::load_snapshot`] set and the file present, the
    /// snapshot's trainer state and item memories are restored first (the
    /// snapshot must describe the model's spec), so the runtime resumes
    /// bit-identically where the snapshotting process stopped.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError`] for an invalid shard count or ring geometry,
    /// and [`HdcError::Snapshot`] for a present-but-incompatible snapshot.
    pub fn spawn(mut model: Model<X>, config: RuntimeConfig) -> Result<Self, HdcError> {
        let mut restored_items = Vec::new();
        if let Some(path) = &config.load_snapshot {
            // Only a *missing* file is a cold start. Any other read failure
            // (permissions, broken mount) must be loud: silently serving an
            // untrained model — and then overwriting the snapshot with its
            // blank state on shutdown — would destroy the saved training.
            match std::fs::read(path) {
                Ok(bytes) => {
                    let mut snapshot = Snapshot::from_bytes(&bytes)?;
                    restored_items = snapshot.take_items();
                    model.restore(&snapshot)?;
                }
                Err(error) if error.kind() == std::io::ErrorKind::NotFound => {}
                Err(error) => {
                    return Err(HdcError::Snapshot(format!(
                        "reading {}: {error}",
                        path.display()
                    )))
                }
            }
        }
        // Durable recovery composes on top of the (optional) seed snapshot:
        // the installed background snapshot restores first, then the WAL
        // tail replays over it. The spec digest in every segment header
        // guarantees the log belongs to this model's spec.
        let mut replay = Vec::new();
        let mut durable_parts = None;
        if let Some(dcfg) = &config.durability {
            let digest = model.spec().hash64();
            let (store, recovery) = Store::open(&dcfg.dir, digest, dcfg.wal_config())?;
            if let Some(blob) = &recovery.snapshot {
                let mut snapshot = Snapshot::from_bytes(blob)?;
                restored_items.extend(snapshot.take_items());
                model.restore(&snapshot)?;
            }
            replay = recovery.records;
            durable_parts = Some(store.into_parts());
        }
        let (spec, encoder, state) = model.into_parts();
        let task = spec.task;
        let (mut head, mut learner) = match state {
            TaskState::Classify {
                trainer,
                classifier,
            } => (Head::Classes(classifier), OnlineLearner::Classify(trainer)),
            TaskState::Regress { trainer, model } => {
                (Head::Values(model), OnlineLearner::Regress(trainer))
            }
        };
        // Replay the WAL tail: fits fold into the trainer accumulators
        // (commutative integer addition, so the result is bit-identical to
        // the pre-crash fold order); item mutations are applied to the item
        // plane below, in log order.
        let mut item_replay = Vec::new();
        let mut replayed_fits = 0usize;
        for record in replay {
            match record {
                WalRecord::Fit { hv, label } => {
                    let OnlineLearner::Classify(trainer) = &mut learner else {
                        return Err(HdcError::Storage(
                            "log holds classification fits, model is regression".into(),
                        ));
                    };
                    if hv.dim() != spec.dim {
                        return Err(HdcError::Storage(format!(
                            "logged fit has dimension {}, model expects {}",
                            hv.dim(),
                            spec.dim
                        )));
                    }
                    let label = usize::try_from(label).ok().filter(
                        |&l| matches!(task, Task::Classification { classes } if l < classes),
                    );
                    let Some(label) = label else {
                        return Err(HdcError::Storage(
                            "logged fit label out of range for the model".into(),
                        ));
                    };
                    trainer
                        .observe(&hv, label)
                        .map_err(|e| HdcError::Storage(format!("replaying fit: {e}")))?;
                    replayed_fits += 1;
                }
                WalRecord::FitValue { hv, value } => {
                    let OnlineLearner::Regress(trainer) = &mut learner else {
                        return Err(HdcError::Storage(
                            "log holds regression fits, model is classification".into(),
                        ));
                    };
                    if hv.dim() != spec.dim {
                        return Err(HdcError::Storage(format!(
                            "logged fit has dimension {}, model expects {}",
                            hv.dim(),
                            spec.dim
                        )));
                    }
                    trainer.observe(&hv, value);
                    replayed_fits += 1;
                }
                record @ (WalRecord::Insert { .. } | WalRecord::Remove { .. }) => {
                    item_replay.push(record);
                }
            }
        }
        if replayed_fits > 0 {
            head = learner.finish();
        }
        let mut fleet = ShardedModel::with_head(
            head.clone(),
            spec.dim,
            config.shards,
            config.ring,
            config.seed,
        )?;
        // The item plane: by default items live in the fleet's in-RAM
        // shard maps; with a page-cache budget they live in the file-backed
        // paged store instead (bounded resident memory), and the fleet only
        // routes keys.
        let mut plane: Option<PagedStore> = match &config.durability {
            Some(dcfg) => match dcfg.page_cache {
                Some(budget) => Some(PagedStore::open(dcfg.dir.join("items"), spec.dim, budget)?),
                None => None,
            },
            None => None,
        };
        match plane.as_mut() {
            Some(store) => {
                for (key, hv) in restored_items {
                    if hv.dim() != spec.dim {
                        return Err(HdcError::Storage(format!(
                            "restored item has dimension {}, model expects {}",
                            hv.dim(),
                            spec.dim
                        )));
                    }
                    store.insert(&key, &hv)?;
                }
            }
            None => {
                for (key, hv) in restored_items {
                    if hv.dim() != spec.dim {
                        return Err(HdcError::Storage(format!(
                            "restored item has dimension {}, model expects {}",
                            hv.dim(),
                            spec.dim
                        )));
                    }
                    fleet.insert(key, hv);
                }
            }
        }
        for record in item_replay {
            match record {
                WalRecord::Insert { key, hv } => {
                    if hv.dim() != spec.dim {
                        return Err(HdcError::Storage(format!(
                            "logged insert has dimension {}, model expects {}",
                            hv.dim(),
                            spec.dim
                        )));
                    }
                    match plane.as_mut() {
                        Some(store) => {
                            store.insert(&key, &hv)?;
                        }
                        None => {
                            fleet.insert(key, hv);
                        }
                    }
                }
                WalRecord::Remove { key } => match plane.as_mut() {
                    Some(store) => {
                        store.remove(&key)?;
                    }
                    None => {
                        fleet.remove(&key);
                    }
                },
                WalRecord::Fit { .. } | WalRecord::FitValue { .. } => {
                    unreachable!("fits are folded above, never deferred")
                }
            }
        }
        let policy = BatchPolicy {
            max_batch: config.policy.max_batch.max(1),
            max_wait: config.policy.max_wait,
        };
        let metrics = Arc::new(ServeMetrics::new(policy.max_batch));
        let generations = Arc::new(GenerationCell::new(Arc::new(head)));
        let alive = Arc::new(AtomicBool::new(true));

        let (work_tx, work_rx) = mpsc::channel::<Work<X::Owned>>();
        let (trainer_tx, trainer_rx) = mpsc::channel::<TrainerMsg>();

        let identity = ShardIdentity {
            name: config.name.clone(),
            ring_positions: config.ring.positions as u64,
        };
        // The durable halves: the dispatcher owns the append half (the
        // WAL behind its group-commit flush scheduler); the snapshotter
        // thread owns the install half, receiving one job per triggered
        // snapshot so installation and segment GC never block serving or
        // training.
        let mut snapshotter = None;
        let durability = match (config.durability.as_ref(), durable_parts) {
            (Some(dcfg), Some((wal, installer))) => {
                let (snap_tx, snap_rx) = mpsc::channel::<SnapJob>();
                snapshotter = Some(
                    thread::Builder::new()
                        .name("hdc-serve-snap".into())
                        .spawn(move || snapshot_loop(snap_rx, installer))
                        .expect("spawning the snapshotter thread"),
                );
                let last_seq = wal.next_seq();
                Some(Durability {
                    wal: GroupCommitWal::new(wal, dcfg.group_commit_config()),
                    spec: spec.clone(),
                    snapshot_every: dcfg.snapshot_every,
                    appended: 0,
                    snap_tx,
                    sync: dcfg.sync,
                    last_seq,
                })
            }
            _ => None,
        };
        let dispatcher = {
            let metrics = Arc::clone(&metrics);
            let generations = Arc::clone(&generations);
            let trainer_tx = trainer_tx.clone();
            let alive = Arc::clone(&alive);
            thread::Builder::new()
                .name("hdc-serve-dispatch".into())
                .spawn(move || {
                    // Drop guard: the liveness flag goes false the moment
                    // the dispatcher exits — graceful shutdown *or* panic —
                    // so health probes stop reporting a dead queue healthy.
                    let _alive = AliveGuard(alive);
                    dispatcher_loop(
                        work_rx,
                        fleet,
                        encoder,
                        policy,
                        metrics,
                        generations,
                        trainer_tx,
                        identity,
                        durability,
                        plane,
                    )
                })
                .expect("spawning the dispatcher thread")
        };
        let trainer_thread = {
            let metrics = Arc::clone(&metrics);
            let generations = Arc::clone(&generations);
            thread::Builder::new()
                .name("hdc-serve-train".into())
                .spawn(move || {
                    trainer_loop(
                        trainer_rx,
                        learner,
                        generations,
                        config.refresh_every,
                        metrics,
                    )
                })
                .expect("spawning the trainer thread")
        };

        Ok(Self {
            handle: RuntimeHandle {
                work_tx,
                trainer_tx,
                generations,
                metrics,
                alive,
                dim: spec.dim,
                task,
                spec: Arc::new(spec.clone()),
                durable: config.durability.is_some(),
            },
            spec,
            snapshot_on_shutdown: config.snapshot_on_shutdown,
            dispatcher,
            trainer: trainer_thread,
            snapshotter,
        })
    }

    /// A cloneable ingestion handle. Handles stay valid until
    /// [`shutdown`](Self::shutdown); afterwards every call returns
    /// [`HdcError::ServiceUnavailable`].
    #[must_use]
    pub fn handle(&self) -> RuntimeHandle<X> {
        self.handle.clone()
    }

    /// The spec of the pipeline this runtime serves.
    #[must_use]
    pub fn spec(&self) -> &PipelineSpec {
        &self.spec
    }

    /// Stops both threads gracefully — queued work ahead of the shutdown
    /// marker is still served — and returns the final sharded fleet and the
    /// accumulated trainer state (for persistence or warm restart); callers
    /// that only want to stop may ignore them.
    ///
    /// With [`RuntimeConfig::snapshot_on_shutdown`] set, the final state
    /// (spec + trainer accumulators + item memories) is written there
    /// before returning — best-effort: a write failure is reported on
    /// stderr so shutdown always completes.
    pub fn shutdown(self) -> (ShardedModel<String>, OnlineLearner) {
        let _ = self.handle.work_tx.send(Work::Shutdown);
        let fleet = self.dispatcher.join().expect("dispatcher thread panicked");
        let _ = self.handle.trainer_tx.send(TrainerMsg::Stop);
        let learner = self.trainer.join().expect("trainer thread panicked");
        // The dispatcher's exit dropped the snapshot-job sender, and the
        // trainer answered every capture queued before Stop — so this join
        // waits only for in-flight installations to land.
        if let Some(snapshotter) = self.snapshotter {
            let _ = snapshotter.join();
        }
        if let Some(path) = &self.snapshot_on_shutdown {
            let items: Vec<(String, BinaryHypervector)> = fleet
                .entries()
                .map(|(key, hv)| (key.clone(), hv.clone()))
                .collect();
            let snapshot = match &learner {
                OnlineLearner::Classify(trainer) => {
                    Snapshot::of_classify(self.spec.clone(), trainer, items)
                }
                OnlineLearner::Regress(trainer) => {
                    Snapshot::of_regress(self.spec.clone(), trainer, items)
                }
            };
            if let Err(error) = snapshot.write(path) {
                eprintln!(
                    "hdc-serve: shutdown snapshot to {} failed: {error}",
                    path.display()
                );
            }
        }
        (fleet, learner)
    }
}

/// A cheap, cloneable client of a [`Runtime`]: every method is a blocking
/// RPC into the work queue (predictions are answered when their micro-batch
/// is served). Handles are `Send`, so any number of threads — or any number
/// of TCP connection handlers — can share one runtime.
pub struct RuntimeHandle<X: ?Sized + ToOwned> {
    work_tx: Sender<Work<X::Owned>>,
    trainer_tx: Sender<TrainerMsg>,
    generations: Arc<GenerationCell>,
    metrics: Arc<ServeMetrics>,
    alive: Arc<AtomicBool>,
    dim: usize,
    task: Task,
    spec: Arc<PipelineSpec>,
    durable: bool,
}

/// The identity fields of the `stats` reply — fixed at spawn, owned by the
/// dispatcher.
struct ShardIdentity {
    name: String,
    ring_positions: u64,
}

/// Flips the runtime's liveness flag to `false` when dropped — installed
/// on the dispatcher thread so the flag falls on graceful exit *and* on a
/// dispatcher panic alike.
struct AliveGuard(Arc<AtomicBool>);

impl Drop for AliveGuard {
    fn drop(&mut self) {
        self.0.store(false, Ordering::SeqCst);
    }
}

impl<X: ?Sized + ToOwned> Clone for RuntimeHandle<X> {
    fn clone(&self) -> Self {
        Self {
            work_tx: self.work_tx.clone(),
            trainer_tx: self.trainer_tx.clone(),
            generations: Arc::clone(&self.generations),
            metrics: Arc::clone(&self.metrics),
            alive: Arc::clone(&self.alive),
            dim: self.dim,
            task: self.task,
            spec: Arc::clone(&self.spec),
            durable: self.durable,
        }
    }
}

impl<X: ?Sized + ToOwned> fmt::Debug for RuntimeHandle<X> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RuntimeHandle")
            .field("dim", &self.dim)
            .field("task", &self.task)
            .finish()
    }
}

impl<X> RuntimeHandle<X>
where
    X: ?Sized + ToOwned + Sync + 'static,
    X::Owned: Send + 'static,
{
    /// Query dimensionality `d`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The task family this runtime serves.
    #[must_use]
    pub fn task(&self) -> Task {
        self.task
    }

    /// Number of classes the runtime was spawned with.
    ///
    /// # Panics
    ///
    /// Panics on a regression runtime (which has no class set).
    #[must_use]
    pub fn classes(&self) -> usize {
        match self.task {
            Task::Classification { classes } => classes,
            Task::Regression { .. } => {
                panic!("classes() requires a classification runtime, found regression")
            }
        }
    }

    /// Time since the runtime spawned — the probe field `ping` serves.
    #[must_use]
    pub fn uptime(&self) -> Duration {
        self.metrics.uptime()
    }

    /// `true` while the dispatcher is draining the work queue. Falls on
    /// [`Runtime::shutdown`] *and* if the dispatcher thread dies — the
    /// signal the `ping` health probe reports, so a load balancer never
    /// keeps a dead backend in rotation on generation/uptime reads alone.
    #[must_use]
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// The currently published generation (snapshot; cheap).
    #[must_use]
    pub fn generation(&self) -> Generation {
        self.generations.load()
    }

    fn check_classification(&self) -> Result<(), HdcError> {
        if self.task.is_classification() {
            Ok(())
        } else {
            Err(HdcError::TaskMismatch {
                expected: "classification",
                found: self.task.name(),
            })
        }
    }

    fn check_regression(&self) -> Result<(), HdcError> {
        if self.task.is_regression() {
            Ok(())
        } else {
            Err(HdcError::TaskMismatch {
                expected: "regression",
                found: self.task.name(),
            })
        }
    }

    /// Predicts one raw input. The input is encoded server-side inside the
    /// micro-batch's parallel encode pass. Blocks until the batch is
    /// served.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::TaskMismatch`] on a regression runtime and
    /// [`HdcError::ServiceUnavailable`] after shutdown.
    pub fn predict(&self, key: impl Into<String>, input: &X) -> Result<Prediction, HdcError> {
        self.check_classification()?;
        self.submit_jobs(
            vec![(key.into(), Payload::Input(input.to_owned()))],
            Work::Predict,
        )
        .map(|mut replies| replies.pop().expect("one prediction per request"))
    }

    /// Predicts one already encoded query.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::TaskMismatch`] on a regression runtime,
    /// [`HdcError::DimensionMismatch`] for a wrong-width query and
    /// [`HdcError::ServiceUnavailable`] after shutdown.
    pub fn predict_encoded(
        &self,
        key: impl Into<String>,
        hv: BinaryHypervector,
    ) -> Result<Prediction, HdcError> {
        self.check_classification()?;
        self.check_dim(hv.dim())?;
        self.submit_jobs(vec![(key.into(), Payload::Encoded(hv))], Work::Predict)
            .map(|mut replies| replies.pop().expect("one prediction per request"))
    }

    /// Predicts a set of raw inputs, in order. The requests enter the same
    /// queue as everyone else's — the dispatcher is free to coalesce them
    /// with concurrent callers or split them across micro-batches (each
    /// prediction reports the generation that served it).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::TaskMismatch`] on a regression runtime and
    /// [`HdcError::ServiceUnavailable`] after shutdown.
    pub fn predict_many<'a, I>(&self, inputs: I) -> Result<Vec<Prediction>, HdcError>
    where
        I: IntoIterator<Item = (String, &'a X)>,
        X: 'a,
    {
        self.check_classification()?;
        self.submit_jobs(
            inputs
                .into_iter()
                .map(|(key, input)| (key, Payload::Input(input.to_owned())))
                .collect(),
            Work::Predict,
        )
    }

    /// Predicts a set of already encoded queries, in order.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::TaskMismatch`] on a regression runtime,
    /// [`HdcError::DimensionMismatch`] if any query's width differs from
    /// the runtime's and [`HdcError::ServiceUnavailable`] after shutdown.
    pub fn predict_encoded_many(
        &self,
        pairs: Vec<(String, BinaryHypervector)>,
    ) -> Result<Vec<Prediction>, HdcError> {
        self.check_classification()?;
        for (_, hv) in &pairs {
            self.check_dim(hv.dim())?;
        }
        self.submit_jobs(
            pairs
                .into_iter()
                .map(|(key, hv)| (key, Payload::Encoded(hv)))
                .collect(),
            Work::Predict,
        )
    }

    /// Predicts one raw input's real-valued label — the regression twin of
    /// [`predict`](Self::predict), riding the same micro-batched queue.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::TaskMismatch`] on a classification runtime and
    /// [`HdcError::ServiceUnavailable`] after shutdown.
    pub fn predict_value(
        &self,
        key: impl Into<String>,
        input: &X,
    ) -> Result<ValuePrediction, HdcError> {
        self.check_regression()?;
        self.submit_jobs(
            vec![(key.into(), Payload::Input(input.to_owned()))],
            Work::PredictValue,
        )
        .map(|mut replies| replies.pop().expect("one prediction per request"))
    }

    /// Predicts one already encoded query's real-valued label.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::TaskMismatch`] on a classification runtime,
    /// [`HdcError::DimensionMismatch`] for a wrong-width query and
    /// [`HdcError::ServiceUnavailable`] after shutdown.
    pub fn predict_value_encoded(
        &self,
        key: impl Into<String>,
        hv: BinaryHypervector,
    ) -> Result<ValuePrediction, HdcError> {
        self.check_regression()?;
        self.check_dim(hv.dim())?;
        self.submit_jobs(vec![(key.into(), Payload::Encoded(hv))], Work::PredictValue)
            .map(|mut replies| replies.pop().expect("one prediction per request"))
    }

    /// Predicts a set of raw inputs' values, in order.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::TaskMismatch`] on a classification runtime and
    /// [`HdcError::ServiceUnavailable`] after shutdown.
    pub fn predict_value_many<'a, I>(&self, inputs: I) -> Result<Vec<ValuePrediction>, HdcError>
    where
        I: IntoIterator<Item = (String, &'a X)>,
        X: 'a,
    {
        self.check_regression()?;
        self.submit_jobs(
            inputs
                .into_iter()
                .map(|(key, input)| (key, Payload::Input(input.to_owned())))
                .collect(),
            Work::PredictValue,
        )
    }

    /// Predicts a set of already encoded queries' values, in order.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::TaskMismatch`] on a classification runtime,
    /// [`HdcError::DimensionMismatch`] if any query's width differs from
    /// the runtime's and [`HdcError::ServiceUnavailable`] after shutdown.
    pub fn predict_value_encoded_many(
        &self,
        pairs: Vec<(String, BinaryHypervector)>,
    ) -> Result<Vec<ValuePrediction>, HdcError> {
        self.check_regression()?;
        for (_, hv) in &pairs {
            self.check_dim(hv.dim())?;
        }
        self.submit_jobs(
            pairs
                .into_iter()
                .map(|(key, hv)| (key, Payload::Encoded(hv)))
                .collect(),
            Work::PredictValue,
        )
    }

    /// The shared submit-and-collect path behind every prediction form:
    /// enqueue one job per input (all sharing a reply channel and an
    /// enqueue timestamp), then collect replies by index.
    fn submit_jobs<R: Clone + Default>(
        &self,
        jobs: Vec<(String, Payload<X::Owned>)>,
        wrap: impl Fn(PredictJob<X::Owned, R>) -> Work<X::Owned>,
    ) -> Result<Vec<R>, HdcError> {
        let expected = jobs.len();
        if expected == 0 {
            return Ok(Vec::new());
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        let enqueued = Instant::now();
        for (index, (key, payload)) in jobs.into_iter().enumerate() {
            self.send_work(wrap(PredictJob {
                key,
                payload,
                enqueued,
                index,
                reply: reply_tx.clone(),
            }))?;
        }
        drop(reply_tx);
        let mut replies = vec![R::default(); expected];
        let mut received = 0;
        while received < expected {
            let (index, reply) = reply_rx.recv().map_err(|_| HdcError::ServiceUnavailable)?;
            replies[index] = reply;
            received += 1;
        }
        Ok(replies)
    }

    /// Stores an encoded hypervector under `key` on its owning shard.
    /// Returns `true` if a previous entry was replaced.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] for a wrong-width vector and
    /// [`HdcError::ServiceUnavailable`] after shutdown.
    pub fn insert(&self, key: impl Into<String>, hv: BinaryHypervector) -> Result<bool, HdcError> {
        self.check_dim(hv.dim())?;
        self.rpc(|reply| Work::Insert {
            key: key.into(),
            hv,
            reply,
        })
    }

    /// Removes a stored entry. Returns `true` if the key was stored.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::ServiceUnavailable`] after shutdown.
    pub fn remove(&self, key: impl Into<String>) -> Result<bool, HdcError> {
        self.rpc(|reply| Work::Remove {
            key: key.into(),
            reply,
        })
    }

    /// Enqueues one raw training observation. Encoding rides the
    /// dispatcher's next micro-batch; the observation is then folded into
    /// the online trainer in the background and becomes visible to
    /// predictions at the next generation publish. Fire-and-forget on an
    /// in-RAM runtime; on a durable runtime this blocks until the
    /// observation's write-ahead-log record is flushed — an `Ok` return is
    /// a durability acknowledgement, and the observation survives a crash.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::TaskMismatch`] on a regression runtime,
    /// [`HdcError::LabelOutOfRange`] for an unknown label and
    /// [`HdcError::ServiceUnavailable`] after shutdown.
    pub fn fit(&self, input: &X, label: usize) -> Result<(), HdcError> {
        self.check_label(label)?;
        if self.durable {
            return self.rpc(|ack| Work::Fit {
                payload: Payload::Input(input.to_owned()),
                label,
                ack: Some(ack),
            });
        }
        self.send_work(Work::Fit {
            payload: Payload::Input(input.to_owned()),
            label,
            ack: None,
        })
    }

    /// Enqueues one already encoded training observation. On an in-RAM
    /// runtime it goes straight to the background trainer (no dispatcher
    /// hop) and is fire-and-forget; on a durable runtime it rides the work
    /// queue so the dispatcher can log it, and blocks until the record is
    /// flushed.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::TaskMismatch`] on a regression runtime,
    /// [`HdcError::DimensionMismatch`]/[`HdcError::LabelOutOfRange`] for
    /// invalid observations and [`HdcError::ServiceUnavailable`] after
    /// shutdown.
    pub fn fit_encoded(&self, hv: BinaryHypervector, label: usize) -> Result<(), HdcError> {
        self.check_dim(hv.dim())?;
        self.check_label(label)?;
        if self.durable {
            return self.rpc(|ack| Work::Fit {
                payload: Payload::Encoded(hv),
                label,
                ack: Some(ack),
            });
        }
        self.trainer_tx
            .send(TrainerMsg::Observe { hv, label })
            .map_err(|_| HdcError::ServiceUnavailable)
    }

    /// Enqueues one raw `(input, value)` training observation — the
    /// regression twin of [`fit`](Self::fit). Fire-and-forget in RAM,
    /// acknowledged-after-flush when durable.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::TaskMismatch`] on a classification runtime and
    /// [`HdcError::ServiceUnavailable`] after shutdown.
    pub fn fit_value(&self, input: &X, value: f64) -> Result<(), HdcError> {
        self.check_regression()?;
        if self.durable {
            return self.rpc(|ack| Work::FitValue {
                payload: Payload::Input(input.to_owned()),
                value,
                ack: Some(ack),
            });
        }
        self.send_work(Work::FitValue {
            payload: Payload::Input(input.to_owned()),
            value,
            ack: None,
        })
    }

    /// Enqueues one already encoded `(query, value)` training observation.
    /// Fire-and-forget straight to the background trainer in RAM;
    /// acknowledged-after-flush through the work queue when durable.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::TaskMismatch`] on a classification runtime,
    /// [`HdcError::DimensionMismatch`] for a wrong-width vector and
    /// [`HdcError::ServiceUnavailable`] after shutdown.
    pub fn fit_value_encoded(&self, hv: BinaryHypervector, value: f64) -> Result<(), HdcError> {
        self.check_regression()?;
        self.check_dim(hv.dim())?;
        if self.durable {
            return self.rpc(|ack| Work::FitValue {
                payload: Payload::Encoded(hv),
                value,
                ack: Some(ack),
            });
        }
        self.trainer_tx
            .send(TrainerMsg::ObserveValue { hv, value })
            .map_err(|_| HdcError::ServiceUnavailable)
    }

    /// Forces the trainer to publish a new generation, returning its id.
    /// The request travels through the same work queue as `fit`, so every
    /// observation enqueued before `refresh` is included in the published
    /// generation; the dispatcher adopts it at the next micro-batch
    /// boundary, so a prediction issued after `refresh` returns reports
    /// this generation (or a later one).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::ServiceUnavailable`] after shutdown.
    pub fn refresh(&self) -> Result<u64, HdcError> {
        self.rpc(|reply| Work::Refresh { reply })
    }

    /// Adds a shard to the fleet (rebalancing stored entries), returning
    /// its id.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::ServiceUnavailable`] after shutdown.
    pub fn add_shard(&self) -> Result<usize, HdcError> {
        self.rpc(|reply| Work::AddShard { reply })
    }

    /// Removes a shard (redistributing its entries). Returns `false` for an
    /// unknown id or the last shard.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::ServiceUnavailable`] after shutdown.
    pub fn remove_shard(&self, id: usize) -> Result<bool, HdcError> {
        self.rpc(|reply| Work::RemoveShard { id, reply })
    }

    /// Snapshots the runtime's state and metrics.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::ServiceUnavailable`] after shutdown.
    pub fn stats(&self) -> Result<RuntimeStats, HdcError> {
        self.rpc(|reply| Work::Stats { reply })
    }

    /// The spec of the pipeline this runtime serves.
    #[must_use]
    pub fn spec(&self) -> &PipelineSpec {
        &self.spec
    }

    /// Captures a live [`Snapshot`] of the runtime — spec, trainer
    /// accumulators and item memories — without stopping it. The capture
    /// is consistent: the dispatcher collects the items at a micro-batch
    /// boundary and the trainer folds its accumulators in after every
    /// observation relayed before the call, so the snapshot a cluster
    /// router streams to a warm-joining shard is a coherent point in time.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::ServiceUnavailable`] after shutdown.
    pub fn snapshot(&self) -> Result<Snapshot, HdcError> {
        let spec = (*self.spec).clone();
        self.rpc(|reply| Work::Snapshot { spec, reply })
    }

    /// Adopts a [`Snapshot`]'s state into the live runtime: its trainer
    /// accumulators replace the online trainer's, the rebuilt head is
    /// published as a new generation, and its items are merged
    /// (upsert-style) into the fleet. This is how a fresh shard process
    /// joins a cluster warm — a peer's streamed snapshot makes it answer
    /// bit-identically to the shard state it inherits. Returns the id of
    /// the published generation.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Snapshot`] if the snapshot's spec differs from
    /// the runtime's, and [`HdcError::ServiceUnavailable`] after shutdown.
    pub fn restore(&self, snapshot: Snapshot) -> Result<u64, HdcError> {
        if snapshot.spec() != &*self.spec {
            return Err(HdcError::Snapshot(
                "snapshot spec does not match the runtime's spec".into(),
            ));
        }
        self.rpc(|reply| Work::Restore { snapshot, reply })?
    }

    fn rpc<R>(&self, make: impl FnOnce(Sender<R>) -> Work<X::Owned>) -> Result<R, HdcError> {
        let (reply_tx, reply_rx) = mpsc::channel();
        self.send_work(make(reply_tx))?;
        reply_rx.recv().map_err(|_| HdcError::ServiceUnavailable)
    }

    fn send_work(&self, work: Work<X::Owned>) -> Result<(), HdcError> {
        // Increment before the send so the dispatcher's matching decrement
        // (which can only happen after the send) never underflows.
        self.metrics.enqueued(1);
        self.work_tx.send(work).map_err(|_| {
            self.metrics.dequeued(1);
            HdcError::ServiceUnavailable
        })
    }

    fn check_dim(&self, found: usize) -> Result<(), HdcError> {
        if found != self.dim {
            return Err(HdcError::DimensionMismatch {
                expected: self.dim,
                found,
            });
        }
        Ok(())
    }

    fn check_label(&self, label: usize) -> Result<(), HdcError> {
        let Task::Classification { classes } = self.task else {
            return Err(HdcError::TaskMismatch {
                expected: "classification",
                found: self.task.name(),
            });
        };
        if label >= classes {
            return Err(HdcError::LabelOutOfRange { label, classes });
        }
        Ok(())
    }
}

/// One row of a micro-batch, borrowed from its pending job.
enum RowSource<'a, X: ?Sized> {
    Input(&'a X),
    Encoded(&'a BinaryHypervector),
}

impl<'a, X: ?Sized> RowSource<'a, X> {
    fn of<O: Borrow<X>>(payload: &'a Payload<O>) -> Self {
        match payload {
            Payload::Input(input) => RowSource::Input(input.borrow()),
            Payload::Encoded(hv) => RowSource::Encoded(hv),
        }
    }
}

/// Fills `batch` (already sized to `sources.len()`) from the row sources:
/// raw inputs are encoded, pre-encoded rows copied — one parallel pass over
/// disjoint chunks, bit-identical to the serial loop.
fn fill_batch<X: ?Sized + Sync>(
    encoder: &dyn DynEncoder<X>,
    sources: &[RowSource<'_, X>],
    batch: &mut HypervectorBatch,
) {
    if sources.is_empty() {
        return;
    }
    let rows_per_chunk = if sources.len() < minipool::MIN_PARALLEL_ITEMS {
        sources.len()
    } else {
        sources.len().div_ceil(minipool::max_threads())
    };
    let mut chunks: Vec<_> = batch.chunks_mut(rows_per_chunk).collect();
    minipool::par_fill_indexed(&mut chunks, |_, chunk| {
        for (row_index, mut row) in chunk.rows_mut() {
            match &sources[row_index] {
                RowSource::Input(input) => encoder.encode_into(input, row),
                RowSource::Encoded(hv) => row.copy_from(hv.view()),
            }
        }
    });
}

/// One background-snapshot installation job: the trainer's capture arrives
/// on `snapshot_rx` (queued behind every observation it must include), and
/// `upto` is the log sequence number the installed snapshot covers — replay
/// after installation starts there.
struct SnapJob {
    snapshot_rx: Receiver<Snapshot>,
    upto: u64,
}

/// The dispatcher-owned durability state: the WAL append half (behind the
/// group-commit flush scheduler), the spec (re-sent with every snapshot
/// capture), and the snapshot cadence.
struct Durability {
    wal: GroupCommitWal,
    spec: PipelineSpec,
    snapshot_every: u64,
    /// Records appended since the last triggered snapshot.
    appended: u64,
    snap_tx: Sender<SnapJob>,
    /// The configured flush policy — the dispatcher consults it to decide
    /// whether the paged item plane needs its own fsync at each commit
    /// boundary.
    sync: SyncPolicy,
    /// Sequence of the last appended record: the ticket the next
    /// [`commit`](Durability::commit) parks on.
    last_seq: u64,
}

impl Durability {
    /// Appends one record. Fail-stop on a storage error: the dispatcher
    /// must never acknowledge a write it cannot recover, and exiting flips
    /// the liveness flag so health probes drop this runtime.
    fn append(&mut self, record: &WalRecord) {
        self.last_seq = self
            .wal
            .append(record)
            .expect("write-ahead log append failed; refusing to acknowledge non-durable writes");
        self.appended += 1;
    }

    /// Parks this micro-batch's acknowledgements on the flush scheduler:
    /// they fire when the group's single `fdatasync` retires everything
    /// appended so far (inline, for a zero window or
    /// [`SyncPolicy::Never`]). Fail-stop like [`append`](Durability::append).
    fn commit(&mut self, acks: Vec<GroupAck>) {
        self.wal
            .commit(self.last_seq, acks)
            .expect("write-ahead log flush failed; refusing to acknowledge non-durable writes");
    }

    fn snapshot_due(&self) -> bool {
        self.snapshot_every > 0 && self.appended >= self.snapshot_every
    }
}

/// Runs on the `hdc-serve-snap` thread: waits for each triggered capture to
/// arrive from the trainer, then installs it (tmp+rename + manifest) and
/// garbage-collects the WAL segments it retires. Install failures are
/// reported, never fatal — the log still covers everything.
fn snapshot_loop(snap_rx: Receiver<SnapJob>, installer: SnapshotInstaller) {
    while let Ok(job) = snap_rx.recv() {
        let Ok(snapshot) = job.snapshot_rx.recv() else {
            continue;
        };
        if let Err(error) = installer.install(&snapshot.to_bytes(), job.upto) {
            eprintln!("hdc-serve: background snapshot installation failed: {error}");
        }
    }
}

/// Collects the item plane's full contents for a snapshot capture. With the
/// paged plane the items are *not* copied into the snapshot — the paged
/// files are themselves durable, so the store is flushed instead and the
/// snapshot carries only the trainer state.
fn snapshot_items(
    plane: &mut Option<PagedStore>,
    fleet: &ShardedModel<String>,
) -> Result<Vec<(String, BinaryHypervector)>, HdcError> {
    match plane.as_mut() {
        Some(store) => {
            store.flush()?;
            Ok(Vec::new())
        }
        None => Ok(fleet
            .entries()
            .map(|(key, hv)| (key.clone(), hv.clone()))
            .collect()),
    }
}

/// Triggers one background snapshot: flush/collect the items, mark the
/// cover point, and wire the trainer's capture (queued behind every
/// observation relayed so far) to the snapshotter thread.
fn trigger_snapshot(
    dur: &mut Durability,
    plane: &mut Option<PagedStore>,
    fleet: &ShardedModel<String>,
    trainer_tx: &Sender<TrainerMsg>,
) {
    let items = match snapshot_items(plane, fleet) {
        Ok(items) => items,
        Err(error) => {
            eprintln!("hdc-serve: background snapshot skipped: {error}");
            return;
        }
    };
    let upto = match dur.wal.next_seq() {
        Ok(seq) => seq,
        Err(error) => {
            eprintln!("hdc-serve: background snapshot skipped: {error}");
            return;
        }
    };
    let (reply, snapshot_rx) = mpsc::channel();
    if trainer_tx
        .send(TrainerMsg::Snapshot {
            spec: dur.spec.clone(),
            items,
            reply,
        })
        .is_err()
    {
        return;
    }
    let _ = dur.snap_tx.send(SnapJob { snapshot_rx, upto });
    dur.appended = 0;
}

/// A fit queued in the current micro-batch: the observation payload, its
/// target (label or value), and the ack channel a durable caller is
/// blocked on until the WAL flush — `None` for fire-and-forget fits.
type PendingFit<O, T> = (Payload<O>, T, Option<Sender<()>>);

#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn dispatcher_loop<X>(
    work_rx: Receiver<Work<X::Owned>>,
    mut fleet: ShardedModel<String>,
    encoder: Box<dyn DynEncoder<X>>,
    policy: BatchPolicy,
    metrics: Arc<ServeMetrics>,
    generations: Arc<GenerationCell>,
    trainer_tx: Sender<TrainerMsg>,
    identity: ShardIdentity,
    mut durability: Option<Durability>,
    mut plane: Option<PagedStore>,
) -> ShardedModel<String>
where
    X: ?Sized + ToOwned + Sync + 'static,
    X::Owned: Send + 'static,
{
    let dim = fleet.dim();
    // Scratch arenas recycled across micro-batches (`resize_zeroed` keeps
    // the allocation): one for label predictions, one for value
    // predictions, one for fit observations — all riding the same parallel
    // encode pass. The task is fixed at spawn, so only the head's own
    // prediction arena is preallocated to a full micro-batch; the other
    // kind of prediction can never arrive (handles reject it up front).
    let (predict_rows, value_rows) = match fleet.head() {
        Head::Classes(_) => (policy.max_batch, 0),
        Head::Values(_) => (0, policy.max_batch),
    };
    let mut predict_scratch = HypervectorBatch::with_capacity(dim, predict_rows);
    let mut value_scratch = HypervectorBatch::with_capacity(dim, value_rows);
    let mut fit_scratch = HypervectorBatch::new(dim);
    let mut adopted = generations.load();

    let mut pending: Vec<PredictJob<X::Owned, Prediction>> = Vec::new();
    let mut pending_values: Vec<PredictJob<X::Owned, ValuePrediction>> = Vec::new();
    let mut fits: Vec<PendingFit<X::Owned, usize>> = Vec::new();
    let mut value_fits: Vec<PendingFit<X::Owned, f64>> = Vec::new();
    let mut fit_acks: Vec<Sender<()>> = Vec::new();

    'runtime: loop {
        let Ok(work) = work_rx.recv() else {
            break 'runtime;
        };
        metrics.dequeued(1);
        // Anything that is not a prediction or fit is handled immediately;
        // a prediction opens a micro-batch collection window.
        let mut stashed: Option<Work<X::Owned>> = None;
        match work {
            Work::Shutdown => break 'runtime,
            Work::Predict(job) => pending.push(job),
            Work::PredictValue(job) => pending_values.push(job),
            Work::Fit {
                payload,
                label,
                ack,
            } => fits.push((payload, label, ack)),
            Work::FitValue {
                payload,
                value,
                ack,
            } => value_fits.push((payload, value, ack)),
            other => stashed = Some(other),
        }
        if stashed.is_none() && !(pending.is_empty() && pending_values.is_empty()) {
            let deadline = Instant::now() + policy.max_wait;
            while pending.len() + pending_values.len() < policy.max_batch {
                let remaining = deadline.saturating_duration_since(Instant::now());
                match work_rx.recv_timeout(remaining) {
                    Ok(more) => {
                        metrics.dequeued(1);
                        match more {
                            Work::Predict(job) => pending.push(job),
                            Work::PredictValue(job) => pending_values.push(job),
                            // Fit observations ride the same encode pass
                            // as the batch they arrived with.
                            Work::Fit {
                                payload,
                                label,
                                ack,
                            } => fits.push((payload, label, ack)),
                            Work::FitValue {
                                payload,
                                value,
                                ack,
                            } => value_fits.push((payload, value, ack)),
                            // Any other op closes the batch; it is served
                            // first so queue order is preserved.
                            other => {
                                stashed = Some(other);
                                break;
                            }
                        }
                    }
                    Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        }

        // --- Serve the collected micro-batch. ---------------------------
        let batch_size = pending.len() + pending_values.len();
        if batch_size > 0 || !fits.is_empty() || !value_fits.is_empty() {
            // Adopt the newest published generation at the batch boundary:
            // one swap covers every shard, so the whole batch — and every
            // reply in it — is served by exactly one generation.
            let published = generations.load();
            if published.id() != adopted.id() {
                fleet
                    .set_head(published.head().clone())
                    .expect("published generations share the runtime dimensionality");
                adopted = published;
            }
            let generation = adopted.id();
            let mut latencies = Vec::with_capacity(batch_size);

            if !pending.is_empty() {
                predict_scratch.resize_zeroed(pending.len());
                let sources: Vec<RowSource<'_, X>> = pending
                    .iter()
                    .map(|job| RowSource::of(&job.payload))
                    .collect();
                fill_batch(encoder.as_ref(), &sources, &mut predict_scratch);
                drop(sources);
                let keys: Vec<&str> = pending.iter().map(|job| job.key.as_str()).collect();
                let labels = fleet
                    .predict_batch(&keys, &predict_scratch)
                    .expect("keys and rows are constructed in lockstep on a classification fleet");
                for (job, label) in pending.drain(..).zip(labels) {
                    latencies.push(job.enqueued.elapsed());
                    let _ = job
                        .reply
                        .send((job.index, Prediction { label, generation }));
                }
            }
            if !pending_values.is_empty() {
                value_scratch.resize_zeroed(pending_values.len());
                let sources: Vec<RowSource<'_, X>> = pending_values
                    .iter()
                    .map(|job| RowSource::of(&job.payload))
                    .collect();
                fill_batch(encoder.as_ref(), &sources, &mut value_scratch);
                drop(sources);
                let keys: Vec<&str> = pending_values.iter().map(|job| job.key.as_str()).collect();
                let values = fleet
                    .predict_values(&keys, &value_scratch)
                    .expect("keys and rows are constructed in lockstep on a regression fleet");
                for (job, value) in pending_values.drain(..).zip(values) {
                    latencies.push(job.enqueued.elapsed());
                    let _ = job
                        .reply
                        .send((job.index, ValuePrediction { value, generation }));
                }
            }
            if batch_size > 0 {
                metrics.record_batch(batch_size, latencies);
            }

            let fit_count = fits.len() + value_fits.len();
            if !fits.is_empty() {
                fit_scratch.resize_zeroed(fits.len());
                let sources: Vec<RowSource<'_, X>> = fits
                    .iter()
                    .map(|(payload, _, _)| RowSource::of(payload))
                    .collect();
                fill_batch(encoder.as_ref(), &sources, &mut fit_scratch);
                drop(sources);
                for ((_, label, ack), row) in fits.drain(..).zip(fit_scratch.rows()) {
                    let hv = row.to_hypervector();
                    if let Some(dur) = durability.as_mut() {
                        dur.append(&WalRecord::Fit {
                            hv: hv.clone(),
                            label: label as u64,
                        });
                    }
                    let _ = trainer_tx.send(TrainerMsg::Observe { hv, label });
                    fit_acks.extend(ack);
                }
            }
            if !value_fits.is_empty() {
                fit_scratch.resize_zeroed(value_fits.len());
                let sources: Vec<RowSource<'_, X>> = value_fits
                    .iter()
                    .map(|(payload, _, _)| RowSource::of(payload))
                    .collect();
                fill_batch(encoder.as_ref(), &sources, &mut fit_scratch);
                drop(sources);
                for ((_, value, ack), row) in value_fits.drain(..).zip(fit_scratch.rows()) {
                    let hv = row.to_hypervector();
                    if let Some(dur) = durability.as_mut() {
                        dur.append(&WalRecord::FitValue {
                            hv: hv.clone(),
                            value,
                        });
                    }
                    let _ = trainer_tx.send(TrainerMsg::ObserveValue { hv, value });
                    fit_acks.extend(ack);
                }
            }
            // The micro-batch's acknowledgements park on the flush
            // scheduler as one group ticket: they release when a single
            // `fdatasync` covers every record appended above (possibly
            // shared with neighbouring micro-batches), so an acked fit is
            // on stable storage (per the configured sync policy).
            match durability.as_mut() {
                Some(dur) if fit_count > 0 => {
                    let acks: Vec<GroupAck> = fit_acks
                        .drain(..)
                        .map(|ack| -> GroupAck {
                            Box::new(move || {
                                let _ = ack.send(());
                            })
                        })
                        .collect();
                    dur.commit(acks);
                }
                _ => {
                    for ack in fit_acks.drain(..) {
                        let _ = ack.send(());
                    }
                }
            }
        }

        // --- Then the control operation that closed it, if any. ---------
        match stashed {
            None => {}
            Some(Work::Insert { key, hv, reply }) => {
                // Log-then-apply: the record parks on the group commit and
                // the caller sees the reply only after its flush retires,
                // so an acknowledged insert survives a crash (replay
                // re-applies it, idempotently).
                if let Some(dur) = durability.as_mut() {
                    dur.append(&WalRecord::Insert {
                        key: key.clone(),
                        hv: hv.clone(),
                    });
                }
                let replaced = match plane.as_mut() {
                    Some(store) => {
                        let replaced = store
                            .insert(&key, &hv)
                            .expect("paged item store write failed; refusing to acknowledge");
                        // The paged files share the WAL's commit boundary:
                        // under `Always` they are fsynced before the reply
                        // parks, so the acked binding is durable in both
                        // planes (not just replayable).
                        if durability
                            .as_ref()
                            .is_some_and(|dur| matches!(dur.sync, SyncPolicy::Always))
                        {
                            store
                                .sync_files()
                                .expect("paged item store fsync failed; refusing to acknowledge");
                        }
                        replaced
                    }
                    None => fleet.insert(key, hv).is_some(),
                };
                metrics.record_insert();
                match durability.as_mut() {
                    Some(dur) => dur.commit(vec![Box::new(move || {
                        let _ = reply.send(replaced);
                    })]),
                    None => {
                        let _ = reply.send(replaced);
                    }
                }
            }
            Some(Work::Remove { key, reply }) => {
                if let Some(dur) = durability.as_mut() {
                    dur.append(&WalRecord::Remove { key: key.clone() });
                }
                let removed = match plane.as_mut() {
                    Some(store) => {
                        let removed = store
                            .remove(&key)
                            .expect("paged item store write failed; refusing to acknowledge");
                        if durability
                            .as_ref()
                            .is_some_and(|dur| matches!(dur.sync, SyncPolicy::Always))
                        {
                            store
                                .sync_files()
                                .expect("paged item store fsync failed; refusing to acknowledge");
                        }
                        removed
                    }
                    None => fleet.remove(&key).is_some(),
                };
                metrics.record_remove();
                match durability.as_mut() {
                    Some(dur) => dur.commit(vec![Box::new(move || {
                        let _ = reply.send(removed);
                    })]),
                    None => {
                        let _ = reply.send(removed);
                    }
                }
            }
            Some(Work::Refresh { reply }) => {
                // Forwarded over the trainer channel *after* every fit this
                // dispatcher already relayed, so the published generation
                // includes them; the trainer answers the caller directly.
                let _ = trainer_tx.send(TrainerMsg::Refresh { reply: Some(reply) });
            }
            Some(Work::AddShard { reply }) => {
                let _ = reply.send(fleet.add_shard());
            }
            Some(Work::RemoveShard { id, reply }) => {
                let _ = reply.send(fleet.remove_shard(id));
            }
            Some(Work::Stats { reply }) => {
                let classes = match fleet.head() {
                    Head::Classes(classifier) => classifier.classes() as u64,
                    Head::Values(_) => 0,
                };
                // With the paged plane the fleet's shard maps are empty —
                // keys live in the store, so the key count comes from it
                // (and per-shard loads report the routing fleet, i.e. 0).
                let keys = match plane.as_ref() {
                    Some(store) => store.len() as u64,
                    None => fleet.len() as u64,
                };
                let _ = reply.send(RuntimeStats {
                    generation: generations.load().id(),
                    uptime_us: metrics.uptime().as_micros() as u64,
                    name: identity.name.clone(),
                    ring_positions: identity.ring_positions,
                    dim: dim as u64,
                    classes,
                    shard_loads: fleet
                        .shard_loads()
                        .into_iter()
                        .map(|(id, len)| (id as u64, len as u64))
                        .collect(),
                    keys,
                    last_remap_fraction: fleet.last_remap_fraction(),
                    metrics: metrics.snapshot(),
                });
            }
            Some(Work::Snapshot { spec, reply }) => {
                // The dispatcher owns the items; the trainer owns the
                // accumulators. Collecting here and capturing there keeps
                // the snapshot consistent: every fit this dispatcher
                // relayed before the call precedes the capture in the
                // trainer's queue. A caller-facing snapshot (warm-join
                // streaming) always carries the items — even from the
                // paged plane, whose full scan bypasses its hot cache.
                let items: Vec<(String, BinaryHypervector)> = match plane.as_mut() {
                    Some(store) => store
                        .entries()
                        .expect("paged item store scan failed during snapshot"),
                    None => fleet
                        .entries()
                        .map(|(key, hv)| (key.clone(), hv.clone()))
                        .collect(),
                };
                let _ = trainer_tx.send(TrainerMsg::Snapshot { spec, items, reply });
            }
            Some(Work::Restore {
                mut snapshot,
                reply,
            }) => {
                // Items merge into the item plane first (upsert), then the
                // trainer adopts the accumulators and publishes — so by
                // the time the caller sees the reply, both halves of the
                // snapshot are live.
                for (key, hv) in snapshot.take_items() {
                    match plane.as_mut() {
                        Some(store) => {
                            store
                                .insert(&key, &hv)
                                .expect("paged item store write failed during restore");
                        }
                        None => {
                            fleet.insert(key, hv);
                        }
                    }
                }
                let _ = trainer_tx.send(TrainerMsg::Restore { snapshot, reply });
                // Restored state arrived out-of-band of the WAL, so force a
                // background snapshot to cover it — the capture is queued
                // behind the restore, so it sees the adopted accumulators.
                if let Some(dur) = durability.as_mut() {
                    trigger_snapshot(dur, &mut plane, &fleet, &trainer_tx);
                }
            }
            Some(Work::Shutdown) => break 'runtime,
            Some(Work::Predict(_))
            | Some(Work::PredictValue(_))
            | Some(Work::Fit { .. })
            | Some(Work::FitValue { .. }) => {
                unreachable!("predictions and fits are collected, never stashed")
            }
        }

        // Periodic background snapshotting: once enough records have been
        // logged since the last snapshot, capture one off-thread so replay
        // stays short and retired segments can be collected.
        if durability.as_ref().is_some_and(Durability::snapshot_due) {
            let dur = durability.as_mut().expect("checked above");
            trigger_snapshot(dur, &mut plane, &fleet, &trainer_tx);
        }
    }
    // Graceful exit: flush whatever the sync policy deferred. Best-effort —
    // every acknowledgement already implied its own flush.
    if let Some(dur) = durability.as_mut() {
        if let Err(error) = dur.wal.sync_now() {
            eprintln!("hdc-serve: final WAL flush failed: {error}");
        }
    }
    if let Some(store) = plane.as_mut() {
        if let Err(error) = store.flush() {
            eprintln!("hdc-serve: final item-store flush failed: {error}");
        }
    }
    fleet
}

fn trainer_loop(
    rx: Receiver<TrainerMsg>,
    mut learner: OnlineLearner,
    generations: Arc<GenerationCell>,
    refresh_every: usize,
    metrics: Arc<ServeMetrics>,
) -> OnlineLearner {
    let mut since_publish = 0usize;
    loop {
        match rx.recv() {
            Err(_) | Ok(TrainerMsg::Stop) => break,
            Ok(TrainerMsg::Observe { hv, label }) => {
                let OnlineLearner::Classify(trainer) = &mut learner else {
                    unreachable!("labelled observations are validated at the handle");
                };
                trainer
                    .observe(&hv, label)
                    .expect("labels are validated at the handle");
                metrics.record_fit();
                since_publish += 1;
                if refresh_every > 0 && since_publish >= refresh_every {
                    publish(&learner, &generations);
                    since_publish = 0;
                }
            }
            Ok(TrainerMsg::ObserveValue { hv, value }) => {
                let OnlineLearner::Regress(trainer) = &mut learner else {
                    unreachable!("value observations are validated at the handle");
                };
                trainer.observe(&hv, value);
                metrics.record_fit();
                since_publish += 1;
                if refresh_every > 0 && since_publish >= refresh_every {
                    publish(&learner, &generations);
                    since_publish = 0;
                }
            }
            Ok(TrainerMsg::Refresh { reply }) => {
                let id = publish(&learner, &generations);
                since_publish = 0;
                if let Some(reply) = reply {
                    let _ = reply.send(id);
                }
            }
            Ok(TrainerMsg::Snapshot { spec, items, reply }) => {
                let snapshot = match &learner {
                    OnlineLearner::Classify(trainer) => Snapshot::of_classify(spec, trainer, items),
                    OnlineLearner::Regress(trainer) => Snapshot::of_regress(spec, trainer, items),
                };
                let _ = reply.send(snapshot);
            }
            Ok(TrainerMsg::Restore { snapshot, reply }) => {
                let restored = match &mut learner {
                    OnlineLearner::Classify(trainer) => snapshot.restore_classify_trainer(trainer),
                    OnlineLearner::Regress(trainer) => snapshot.restore_regress_trainer(trainer),
                };
                let _ = reply.send(restored.map(|()| {
                    since_publish = 0;
                    publish(&learner, &generations)
                }));
            }
        }
    }
    learner
}

/// Finalizes the learner's accumulators **off-lock** into an immutable
/// head and swaps it in as the next generation.
fn publish(learner: &OnlineLearner, generations: &GenerationCell) -> u64 {
    generations.publish(Arc::new(learner.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Basis, Enc, Pipeline};
    use hdc_encode::Radians;

    fn trained_model(dim: usize, seed: u64) -> Model<Radians> {
        let mut model = Pipeline::builder(dim)
            .seed(seed)
            .classes(2)
            .basis(Basis::Circular { m: 24, r: 0.0 })
            .encoder(Enc::angle())
            .build()
            .unwrap();
        let hours: Vec<Radians> = (0..48)
            .map(|i| Radians::periodic(f64::from(i) / 2.0, 24.0))
            .collect();
        let labels: Vec<usize> = (0..48).map(|i| usize::from(i >= 24)).collect();
        model.fit_batch(&hours, &labels).unwrap();
        model
    }

    fn trained_value_model(dim: usize, seed: u64) -> Model<Radians> {
        let mut model = Pipeline::builder(dim)
            .seed(seed)
            .regression(0.0, 24.0, 24)
            .basis(Basis::Circular { m: 24, r: 0.0 })
            .encoder(Enc::angle())
            .build()
            .unwrap();
        let hours: Vec<Radians> = (0..48)
            .map(|i| Radians::periodic(f64::from(i) / 2.0, 24.0))
            .collect();
        let values: Vec<f64> = (0..48).map(|i| f64::from(i) / 2.0).collect();
        model.fit_value_batch(&hours, &values).unwrap();
        model
    }

    fn config(shards: usize, max_batch: usize) -> RuntimeConfig {
        RuntimeConfig {
            shards,
            policy: BatchPolicy {
                max_batch,
                max_wait: Duration::from_micros(200),
            },
            refresh_every: 0,
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn runtime_predictions_match_the_direct_model() {
        let model = trained_model(512, 3);
        let inputs: Vec<Radians> = (0..40)
            .map(|i| Radians::periodic(f64::from(i) * 0.6, 24.0))
            .collect();
        let expected = model.predict_batch(&inputs);
        let encoded = model.encode_batch(&inputs);

        let runtime = Runtime::spawn(trained_model(512, 3), config(3, 8)).unwrap();
        let handle = runtime.handle();
        assert_eq!(handle.dim(), 512);
        assert_eq!(handle.classes(), 2);
        assert!(handle.task().is_classification());
        assert!(runtime.spec().task.is_classification());

        // Typed single predictions (server-side encode)…
        for (input, &label) in inputs.iter().zip(&expected) {
            let p = handle.predict("k", input).unwrap();
            assert_eq!(p.label, label);
            assert_eq!(p.generation, 0);
        }
        // …typed many (one queue burst, coalesced into micro-batches)…
        let many = handle
            .predict_many(inputs.iter().enumerate().map(|(i, x)| (format!("k{i}"), x)))
            .unwrap();
        assert_eq!(many.iter().map(|p| p.label).collect::<Vec<_>>(), expected);
        // …and pre-encoded rows.
        let pairs: Vec<(String, BinaryHypervector)> = encoded
            .rows()
            .enumerate()
            .map(|(i, row)| (format!("k{i}"), row.to_hypervector()))
            .collect();
        let served = handle.predict_encoded_many(pairs).unwrap();
        assert_eq!(served.iter().map(|p| p.label).collect::<Vec<_>>(), expected);

        let stats = handle.stats().unwrap();
        assert_eq!(stats.dim, 512);
        assert_eq!(stats.classes, 2);
        assert_eq!(stats.shard_loads.len(), 3);
        assert!(stats.metrics.requests >= 120);
        assert!(stats.metrics.batches >= 1);
        assert!(stats.metrics.mean_batch_size >= 1.0);
        runtime.shutdown();
    }

    #[test]
    fn regression_runtime_serves_values_bit_identically() {
        let model = trained_value_model(512, 7);
        let inputs: Vec<Radians> = (0..40)
            .map(|i| Radians::periodic(f64::from(i) * 0.6, 24.0))
            .collect();
        let expected = model.predict_value_batch(&inputs);
        let encoded = model.encode_batch(&inputs);

        let runtime = Runtime::spawn(trained_value_model(512, 7), config(3, 8)).unwrap();
        let handle = runtime.handle();
        assert!(handle.task().is_regression());

        for (input, &value) in inputs.iter().zip(&expected) {
            let p = handle.predict_value("k", input).unwrap();
            assert_eq!(p.value, value);
            assert_eq!(p.generation, 0);
        }
        let many = handle
            .predict_value_many(inputs.iter().enumerate().map(|(i, x)| (format!("k{i}"), x)))
            .unwrap();
        assert_eq!(many.iter().map(|p| p.value).collect::<Vec<_>>(), expected);
        let pairs: Vec<(String, BinaryHypervector)> = encoded
            .rows()
            .enumerate()
            .map(|(i, row)| (format!("k{i}"), row.to_hypervector()))
            .collect();
        let served = handle.predict_value_encoded_many(pairs).unwrap();
        assert_eq!(served.iter().map(|p| p.value).collect::<Vec<_>>(), expected);

        // Stats report the regression shape: no class set, live uptime.
        let stats = handle.stats().unwrap();
        assert_eq!(stats.classes, 0);
        assert_eq!(stats.dim, 512);
        assert!(stats.metrics.requests >= 120);

        // The classification surface reports the mismatch without
        // enqueueing anything.
        assert!(matches!(
            handle.predict("k", &inputs[0]),
            Err(HdcError::TaskMismatch {
                expected: "classification",
                found: "regression"
            })
        ));
        assert!(matches!(
            handle.fit(&inputs[0], 0),
            Err(HdcError::TaskMismatch { .. })
        ));
        let (_, learner) = runtime.shutdown();
        assert!(learner.as_regress().is_some());
        assert_eq!(learner.observed(), 48);
    }

    #[test]
    fn online_value_fits_publish_generations_that_change_predictions() {
        // Start from an untrained regression model; online observations
        // must teach it the hour-of-day identity.
        let blank = Pipeline::builder(512)
            .seed(11)
            .regression(0.0, 24.0, 24)
            .basis(Basis::Circular { m: 24, r: 0.0 })
            .encoder(Enc::angle())
            .build()
            .unwrap();
        let reference = trained_value_model(512, 11);
        let runtime = Runtime::spawn(blank, config(1, 4)).unwrap();
        let handle = runtime.handle();
        assert_eq!(handle.generation().id(), 0);

        let hours: Vec<Radians> = (0..48)
            .map(|i| Radians::periodic(f64::from(i) / 2.0, 24.0))
            .collect();
        for (i, hour) in hours.iter().enumerate() {
            handle.fit_value(hour, f64::from(i as u32) / 2.0).unwrap();
        }
        let generation = handle.refresh().unwrap();
        assert_eq!(generation, 1);

        // After the publish the served values equal the reference model
        // trained on the same 48 observations.
        for hour in &hours {
            let p = handle.predict_value("probe", hour).unwrap();
            assert_eq!(p.value, reference.predict_value(hour));
            assert_eq!(p.generation, 1);
        }
        let (_, learner) = runtime.shutdown();
        assert_eq!(learner.observed(), 48);
        assert!(matches!(
            handle.fit_value(&hours[0], 0.0),
            Err(HdcError::ServiceUnavailable)
        ));
    }

    #[test]
    fn inserts_removes_and_shard_churn_round_trip() {
        let model = trained_model(256, 5);
        let hv = model.encode(&Radians(1.0));
        let runtime = Runtime::spawn(model, config(2, 4)).unwrap();
        let handle = runtime.handle();

        assert!(!handle.insert("profile", hv.clone()).unwrap());
        assert!(handle.insert("profile", hv.clone()).unwrap());
        let added = handle.add_shard().unwrap();
        assert!(handle.remove_shard(added).unwrap());
        assert!(!handle.remove_shard(999).unwrap());
        assert!(handle.remove("profile").unwrap());
        assert!(!handle.remove("profile").unwrap());
        assert!(matches!(
            handle.insert("p", BinaryHypervector::zeros(128)),
            Err(HdcError::DimensionMismatch { .. })
        ));

        assert!(handle.is_alive());
        let (fleet, _learner) = runtime.shutdown();
        assert!(fleet.is_empty());
        assert!(!handle.is_alive(), "liveness falls with the dispatcher");
        assert!(matches!(
            handle.remove("profile"),
            Err(HdcError::ServiceUnavailable)
        ));
        assert!(matches!(
            handle.predict("k", &Radians(0.5)),
            Err(HdcError::ServiceUnavailable)
        ));
        assert!(matches!(handle.stats(), Err(HdcError::ServiceUnavailable)));
    }

    #[test]
    fn online_fits_publish_monotonic_generations_that_change_predictions() {
        // Start from an untrained model; the first generation of online
        // observations must teach it the day/night split.
        let blank = Pipeline::builder(512)
            .seed(7)
            .classes(2)
            .basis(Basis::Circular { m: 24, r: 0.0 })
            .encoder(Enc::angle())
            .build()
            .unwrap();
        let runtime = Runtime::spawn(blank, config(1, 4)).unwrap();
        let handle = runtime.handle();
        assert_eq!(handle.generation().id(), 0);

        let hours: Vec<Radians> = (0..48)
            .map(|i| Radians::periodic(f64::from(i) / 2.0, 24.0))
            .collect();
        for (i, hour) in hours.iter().enumerate() {
            handle.fit(hour, usize::from(i >= 24)).unwrap();
        }
        let generation = handle.refresh().unwrap();
        assert_eq!(generation, 1);
        assert_eq!(handle.generation().id(), 1);
        assert!(handle.refresh().unwrap() > generation, "ids are monotonic");

        let morning = handle.predict("a", &Radians::periodic(3.0, 24.0)).unwrap();
        let evening = handle.predict("b", &Radians::periodic(21.0, 24.0)).unwrap();
        assert_eq!(morning.label, 0);
        assert_eq!(evening.label, 1);
        assert_eq!(morning.generation, 2);

        // The recovered trainer saw all 48 observations.
        let (_, learner) = runtime.shutdown();
        assert_eq!(learner.as_classify().unwrap().counts(), &[24, 24]);
        assert!(matches!(
            handle.fit(&Radians(0.1), 0),
            Err(HdcError::ServiceUnavailable)
        ));
        assert!(matches!(
            handle.refresh(),
            Err(HdcError::ServiceUnavailable)
        ));
    }

    #[test]
    fn handle_validates_before_enqueueing() {
        let runtime = Runtime::spawn(trained_model(256, 1), config(1, 4)).unwrap();
        let handle = runtime.handle();
        assert!(matches!(
            handle.predict_encoded("k", BinaryHypervector::zeros(64)),
            Err(HdcError::DimensionMismatch {
                expected: 256,
                found: 64
            })
        ));
        assert!(matches!(
            handle.fit_encoded(BinaryHypervector::zeros(256), 9),
            Err(HdcError::LabelOutOfRange {
                label: 9,
                classes: 2
            })
        ));
        // Regression ops on a classification runtime are refused up front.
        assert!(matches!(
            handle.predict_value("k", &Radians(0.1)),
            Err(HdcError::TaskMismatch {
                expected: "regression",
                found: "classification"
            })
        ));
        assert!(matches!(
            handle.fit_value_encoded(BinaryHypervector::zeros(256), 0.5),
            Err(HdcError::TaskMismatch { .. })
        ));
        assert!(handle.predict_many(std::iter::empty()).unwrap().is_empty());
        runtime.shutdown();
    }

    #[test]
    fn queue_depth_settles_back_to_zero_and_uptime_advances() {
        let runtime = Runtime::spawn(trained_model(256, 2), config(1, 16)).unwrap();
        let handle = runtime.handle();
        let inputs: Vec<Radians> = (0..64).map(|i| Radians(f64::from(i) * 0.1)).collect();
        let _ = handle
            .predict_many(inputs.iter().enumerate().map(|(i, x)| (format!("k{i}"), x)))
            .unwrap();
        let stats = handle.stats().unwrap();
        assert_eq!(stats.metrics.queue_depth, 0);
        assert_eq!(stats.metrics.requests, 64);
        assert!(stats.uptime_us > 0);
        assert!(handle.uptime().as_micros() >= u128::from(stats.uptime_us));
        runtime.shutdown();
    }

    #[test]
    fn snapshot_on_shutdown_makes_the_next_spawn_warm() {
        let path =
            std::env::temp_dir().join(format!("hdc-runtime-snapshot-{}.hdcs", std::process::id()));
        let _ = std::fs::remove_file(&path);

        // First life: train online, store an item, snapshot on shutdown.
        let blank = Pipeline::builder(256)
            .seed(21)
            .classes(2)
            .basis(Basis::Circular { m: 24, r: 0.0 })
            .encoder(Enc::angle())
            .build()
            .unwrap();
        let mut first_config = config(2, 4);
        first_config.snapshot_on_shutdown = Some(path.clone());
        // A missing load path is a cold start, not an error.
        first_config.load_snapshot = Some(path.clone());
        let runtime = Runtime::spawn(blank, first_config).unwrap();
        let handle = runtime.handle();
        let hours: Vec<Radians> = (0..48)
            .map(|i| Radians::periodic(f64::from(i) / 2.0, 24.0))
            .collect();
        for (i, hour) in hours.iter().enumerate() {
            handle.fit(hour, usize::from(i >= 24)).unwrap();
        }
        handle.refresh().unwrap();
        let profile = BinaryHypervector::zeros(256);
        handle.insert("profile", profile.clone()).unwrap();
        let first_answers: Vec<usize> = hours
            .iter()
            .map(|h| handle.predict("k", h).unwrap().label)
            .collect();
        runtime.shutdown();
        assert!(path.exists(), "shutdown must write the snapshot");

        // Second life: same blank model + load_snapshot → warm restart.
        let blank = Pipeline::builder(256)
            .seed(21)
            .classes(2)
            .basis(Basis::Circular { m: 24, r: 0.0 })
            .encoder(Enc::angle())
            .build()
            .unwrap();
        let mut second_config = config(2, 4);
        second_config.load_snapshot = Some(path.clone());
        let runtime = Runtime::spawn(blank, second_config).unwrap();
        let handle = runtime.handle();
        // Item memory survived…
        assert!(handle.insert("profile", profile).unwrap(), "entry restored");
        // …and the trained state answers bit-identically without any fit.
        let warm_answers: Vec<usize> = hours
            .iter()
            .map(|h| handle.predict("k", h).unwrap().label)
            .collect();
        assert_eq!(warm_answers, first_answers);
        let (_, learner) = runtime.shutdown();
        assert_eq!(learner.as_classify().unwrap().counts(), &[24, 24]);

        // A mismatched model spec is refused at spawn.
        let other = Pipeline::builder(256)
            .seed(22)
            .classes(2)
            .basis(Basis::Circular { m: 24, r: 0.0 })
            .encoder(Enc::angle())
            .build()
            .unwrap();
        let mut bad_config = config(1, 4);
        bad_config.load_snapshot = Some(path.clone());
        assert!(matches!(
            Runtime::spawn(other, bad_config),
            Err(HdcError::Snapshot(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    fn blank_classify(dim: usize, seed: u64) -> Model<Radians> {
        Pipeline::builder(dim)
            .seed(seed)
            .classes(2)
            .basis(Basis::Circular { m: 24, r: 0.0 })
            .encoder(Enc::angle())
            .build()
            .unwrap()
    }

    #[test]
    fn durable_runtime_replays_the_log_across_lives() {
        let dir = std::env::temp_dir().join(format!("hdc-runtime-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let hours: Vec<Radians> = (0..48)
            .map(|i| Radians::periodic(f64::from(i) / 2.0, 24.0))
            .collect();

        let durable = |snapshot_every| {
            let mut cfg = config(2, 4);
            cfg.durability = Some(DurabilityConfig {
                snapshot_every,
                ..DurabilityConfig::new(&dir)
            });
            cfg
        };

        // First life: every fit/insert below is acknowledged as durable —
        // and nothing here writes a shutdown snapshot, so the *only* way
        // the second life can answer identically is WAL replay.
        let runtime = Runtime::spawn(blank_classify(256, 31), durable(0)).unwrap();
        let handle = runtime.handle();
        for (i, hour) in hours.iter().enumerate() {
            handle.fit(hour, usize::from(i >= 24)).unwrap();
        }
        handle
            .insert("profile", BinaryHypervector::zeros(256))
            .unwrap();
        handle
            .insert("gone", BinaryHypervector::zeros(256))
            .unwrap();
        assert!(handle.remove("gone").unwrap());
        handle.refresh().unwrap();
        let first_answers: Vec<usize> = hours
            .iter()
            .map(|h| handle.predict("k", h).unwrap().label)
            .collect();
        runtime.shutdown();

        // Second life: same blank seed model, recovery from the store.
        // A small snapshot cadence also exercises background installation
        // and segment GC while this life appends more records.
        let runtime = Runtime::spawn(blank_classify(256, 31), durable(8)).unwrap();
        let handle = runtime.handle();
        let stats = handle.stats().unwrap();
        assert_eq!(stats.keys, 1, "insert and remove both replayed");
        let recovered: Vec<usize> = hours
            .iter()
            .map(|h| handle.predict("k", h).unwrap().label)
            .collect();
        assert_eq!(recovered, first_answers, "recovery is bit-identical");
        let (_, learner) = runtime.shutdown();
        assert_eq!(learner.as_classify().unwrap().counts(), &[24, 24]);

        // Third life: recovery now composes installed snapshot + log tail.
        let runtime = Runtime::spawn(blank_classify(256, 31), durable(8)).unwrap();
        let handle = runtime.handle();
        let third: Vec<usize> = hours
            .iter()
            .map(|h| handle.predict("k", h).unwrap().label)
            .collect();
        assert_eq!(third, first_answers);
        let (_, learner) = runtime.shutdown();
        assert_eq!(learner.as_classify().unwrap().counts(), &[24, 24]);

        // A different spec must be refused by the store's digest check.
        assert!(matches!(
            Runtime::spawn(blank_classify(256, 99), durable(0)),
            Err(HdcError::Storage(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn paged_item_plane_bounds_residency_and_recovers() {
        let dir = std::env::temp_dir().join(format!("hdc-runtime-paged-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let durable = || {
            let mut cfg = config(1, 4);
            cfg.durability = Some(DurabilityConfig {
                page_cache: Some(4),
                ..DurabilityConfig::new(&dir)
            });
            cfg
        };

        // Serve a key set 10× the cache budget.
        let runtime = Runtime::spawn(trained_model(256, 5), durable()).unwrap();
        let handle = runtime.handle();
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let entries: Vec<(String, BinaryHypervector)> = (0..40)
            .map(|i| {
                (
                    format!("user-{i}"),
                    BinaryHypervector::random(256, &mut rng),
                )
            })
            .collect();
        for (key, hv) in &entries {
            assert!(!handle.insert(key.clone(), hv.clone()).unwrap());
        }
        assert!(handle.remove("user-7").unwrap());
        assert_eq!(handle.stats().unwrap().keys, 39);
        // A live snapshot streams every item out of the paged store.
        let snapshot = handle.snapshot().unwrap();
        assert_eq!(snapshot.items().len(), 39);
        let streamed: std::collections::HashMap<&str, &BinaryHypervector> = snapshot
            .items()
            .iter()
            .map(|(key, hv)| (key.as_str(), hv))
            .collect();
        for (key, hv) in &entries {
            if key == "user-7" {
                assert!(!streamed.contains_key(key.as_str()));
            } else {
                assert_eq!(streamed[key.as_str()], hv, "bit-identical to in-RAM");
            }
        }
        runtime.shutdown();

        // Second life: the paged files plus the log tail restore the keys.
        let runtime = Runtime::spawn(trained_model(256, 5), durable()).unwrap();
        let handle = runtime.handle();
        assert_eq!(handle.stats().unwrap().keys, 39);
        assert!(handle.insert("user-3", entries[3].1.clone()).unwrap());
        assert!(!handle.insert("user-7", entries[7].1.clone()).unwrap());
        runtime.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
