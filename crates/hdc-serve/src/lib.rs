//! Unified pipeline building and sharded serving for the circular-
//! hypervector workspace.
//!
//! Two layers:
//!
//! * [`Pipeline`] / [`Model`] — the typed builder that replaces the
//!   hand-wired `StdRng → BasisSet → Encoder → CentroidClassifier` glue:
//!   pick a dimensionality, seed, [`Basis`] family and [`Enc`] encoder
//!   spec, get one object with `fit`/`fit_batch`/`predict`/`predict_batch`/
//!   `evaluate`, backed by the workspace's batched parallel paths.
//! * [`ShardedModel`] — production-shaped serving on top: class vectors
//!   replicated across shards, per-key item memories partitioned over an
//!   `hdc-hash` consistent-hash ring, query batches routed per shard
//!   through `predict_rows` and merged in input order. Bit-identical to
//!   the unsharded model for any shard count, with graceful `1/n`
//!   remapping under shard churn — the serving setting circular
//!   hypervectors were invented for (Heddes et al., DAC 2022).
//!
//! # Quickstart
//!
//! ```
//! use hdc_serve::{Basis, Enc, Pipeline, Radians};
//!
//! let mut model = Pipeline::builder(10_000)
//!     .seed(42)
//!     .basis(Basis::Circular { m: 24, r: 0.0 })
//!     .encoder(Enc::angle())
//!     .build()?;
//! let hours: Vec<Radians> = (0..24).map(|h| Radians::periodic(h as f64, 24.0)).collect();
//! let labels: Vec<usize> = (0..24).map(|h| usize::from(h >= 12)).collect();
//! model.fit_batch(&hours, &labels)?;
//! assert_eq!(model.predict(&Radians::periodic(3.0, 24.0)), 0);
//! # Ok::<(), hdc_serve::HdcError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pipeline;
mod sharded;

pub use hdc_core::HdcError;
pub use hdc_encode::{FieldSpec, Radians};
pub use pipeline::{
    AngleSpec, Basis, CategoricalSpec, DynEncoder, Enc, EncoderSpec, Model, ModelBuilder, Pipeline,
    PipelineBuilder, RecordSpec, ScalarSpec, SequenceSpec,
};
pub use sharded::{RingConfig, ShardedModel};
