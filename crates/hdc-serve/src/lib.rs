//! Unified pipeline building, sharded serving and a long-running service
//! runtime for the circular-hypervector workspace.
//!
//! The layers:
//!
//! * [`Pipeline`] / [`Model`] — the typed builder that replaces the
//!   hand-wired `StdRng → BasisSet → Encoder → CentroidClassifier` glue:
//!   pick a dimensionality, seed, [`Basis`] family and [`Enc`] encoder
//!   spec, get one object with `fit`/`fit_batch`/`predict`/`predict_batch`/
//!   `evaluate`, backed by the workspace's batched parallel paths.
//! * [`ShardedModel`] — production-shaped serving on top: class vectors
//!   replicated across shards, per-key item memories partitioned over an
//!   `hdc-hash` consistent-hash ring, query batches routed per shard
//!   through `predict_rows` and merged in input order. Bit-identical to
//!   the unsharded model for any shard count, with graceful `1/n`
//!   remapping under shard churn — the serving setting circular
//!   hypervectors were invented for (Heddes et al., DAC 2022).
//! * [`Runtime`] — the long-running process around the fleet: an MPSC
//!   ingestion queue micro-batching concurrent keyed predictions by a
//!   deadline-or-size [`BatchPolicy`], a background trainer publishing
//!   `Arc`-snapshotted class-vector [`Generation`]s that swap atomically
//!   across all shards (reads never block on training; every
//!   [`Prediction`] carries its generation id), and live
//!   [`metrics`].
//! * [`Server`] / [`BlockingClient`] — a `std::net` framed-TCP front-end
//!   over the runtime ([`wire`] documents the protocol), so many processes
//!   can share one fleet and their traffic coalesces into the same
//!   micro-batches.
//! * [`ClusterRouter`] / [`ClusterServer`] — the multi-process form of the
//!   fleet: shard `Runtime`s run as separate processes, the router maps
//!   keys to them over the same consistent ring `ShardedModel` routes by
//!   (behind the transport-agnostic [`ShardBackend`] seam), replicates
//!   training to every shard, and warm-joins fresh shards by streaming
//!   [`Snapshot`]s — bit-identical to the in-process fleet for any shard
//!   count.
//! * [`DurabilityConfig`] — the storage layer under the runtime
//!   (re-exported from `hdc-store`): a CRC-framed segmented write-ahead
//!   log on the fit/insert/remove path (acks released only after the
//!   configured [`SyncPolicy`] flush), periodic background snapshots
//!   installed atomically off the serving threads, and an optional paged
//!   file-backed item memory ([`PagedStore`] behind the [`ItemStore`]
//!   seam) bounding resident memory by an LRU cache budget. A durable
//!   runtime recovers **bit-identically** to its last acknowledged state
//!   from snapshot + log replay after a crash.
//!
//! # Quickstart
//!
//! ```
//! use hdc_serve::{Basis, Enc, Pipeline, Radians};
//!
//! let mut model = Pipeline::builder(10_000)
//!     .seed(42)
//!     .basis(Basis::Circular { m: 24, r: 0.0 })
//!     .encoder(Enc::angle())
//!     .build()?;
//! let hours: Vec<Radians> = (0..24).map(|h| Radians::periodic(h as f64, 24.0)).collect();
//! let labels: Vec<usize> = (0..24).map(|h| usize::from(h >= 12)).collect();
//! model.fit_batch(&hours, &labels)?;
//! assert_eq!(model.predict(&Radians::periodic(3.0, 24.0)), 0);
//! # Ok::<(), hdc_serve::HdcError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod codec;
pub mod metrics;
mod pipeline;
mod runtime;
mod server;
mod sharded;
mod snapshot;
mod spec;
pub mod wire;

pub use cluster::{ClusterRouter, ClusterServer, FanOut, LocalShard, RemoteShard, ShardBackend};
pub use hdc_core::HdcError;
pub use hdc_encode::{FieldSpec, Radians};
pub use hdc_store::{
    DurabilityConfig, GroupCommitConfig, ItemStore, PagedStore, ResidentStore, SyncPolicy, WalCodec,
};
pub use metrics::{MetricsSnapshot, ServeMetrics};
pub use pipeline::{
    AngleSpec, CategoricalSpec, DynEncoder, Enc, EncoderSpec, Model, ModelBuilder, Pipeline,
    PipelineBuilder, RecordSpec, ScalarSpec, SequenceSpec,
};
pub use runtime::{
    BatchPolicy, Generation, OnlineLearner, Prediction, Runtime, RuntimeConfig, RuntimeHandle,
    RuntimeStats, ValuePrediction,
};
pub use server::{BlockingClient, ClientConfig, Server};
pub use sharded::{Head, RingConfig, ShardedModel};
pub use snapshot::{Snapshot, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use spec::{Basis, EncSpec, PipelineSpec, SpecInput, Task, SPEC_VERSION};
