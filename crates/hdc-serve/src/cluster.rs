//! Multi-process shard clusters: a routing front-end over shard `Runtime`
//! processes, with warm joins via snapshot streaming.
//!
//! # Topology
//!
//! ```text
//!                         ┌────────────────┐
//!   clients ── wire v3 ──▶│  ClusterRouter │ (optionally behind a
//!                         │  (ring lookup) │  ClusterServer front-end)
//!                         └───┬────┬────┬──┘
//!              keyed ops ──────┘    │    └────── replicated ops
//!            (predict/insert/      │           (fit/refresh → all)
//!             remove → owner)      │
//!                 ┌────────────┬───┴────────┐
//!                 ▼            ▼            ▼
//!           ┌──────────┐ ┌──────────┐ ┌──────────┐
//!           │ shard 0  │ │ shard 1  │ │ shard 2  │   each a Runtime +
//!           │ Runtime  │ │ Runtime  │ │ Runtime  │   Server process
//!           └──────────┘ └──────────┘ └──────────┘
//! ```
//!
//! The split mirrors [`ShardedModel`](crate::ShardedModel): the finalized
//! head (class vectors or regression readout) is tiny and **replicated**
//! onto every shard, while the keyed item memories — the state that
//! actually grows with users — are **partitioned** over the same
//! `hdc-hash` consistent ring the in-process fleet routes by. Because the
//! router builds its ring with the exact recipe `ShardedModel` uses
//! (same [`RingConfig`], same seed, shard ids assigned in join order),
//! and because training observations are replicated to every shard,
//! a cluster of N shard processes answers **bit-identically** to the
//! single-process `ShardedModel` — routing decides *where* a query is
//! answered, never *what* the answer is.
//!
//! # Backends
//!
//! The [`ShardBackend`] trait is the transport seam: a shard can live in
//! this process ([`LocalShard`] wrapping a [`RuntimeHandle`]) or in
//! another one ([`RemoteShard`] speaking the framed wire protocol over a
//! [`BlockingClient`]); the router cannot tell the difference.
//!
//! # Warm joins
//!
//! A fresh shard process joins **warm**: the router snapshots a donor
//! peer (any peer — replicated training makes their trainer states
//! identical), computes which item-memory entries the grown ring now
//! assigns to the newcomer, streams the donor's trainer state plus those
//! entries to the new shard as a [`Snapshot`], and only then removes the
//! moved entries from their old owners. Consistent hashing keeps the
//! moved fraction near `1/n`. [`ClusterRouter::leave`] is the inverse:
//! the departing shard's entries are drained back through the ring.

use std::collections::BTreeSet;
use std::fmt;
use std::hash::Hash;
use std::io::{self, BufReader, BufWriter};
use std::net::{
    IpAddr, Ipv4Addr, Ipv6Addr, Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

use hdc_core::{BinaryHypervector, HdcError};
use hdc_hash::HdcHashRing;
use rand::{rngs::StdRng, SeedableRng};

use crate::metrics::MetricsSnapshot;
use crate::runtime::{Prediction, RuntimeHandle, RuntimeStats, ValuePrediction};
use crate::server::{BlockingClient, ClientConfig};
use crate::sharded::RingConfig;
use crate::snapshot::Snapshot;
use crate::wire::{self, Request, Response};

/// Rows per `predict_batch` frame a [`RemoteShard`] sends at once — far
/// below the wire's `u16` row cap, keeping every frame well under
/// [`MAX_FRAME_BYTES`](crate::wire::MAX_FRAME_BYTES) at any realistic
/// dimensionality.
const REMOTE_BATCH_ROWS: usize = 1024;

/// One shard of a cluster, behind any transport: the router speaks this
/// seam only, so in-process shards ([`LocalShard`]) and remote shard
/// processes ([`RemoteShard`]) are interchangeable.
///
/// All operations take encoded queries — encoding happens either at the
/// caller or inside each shard's runtime, never at the router.
pub trait ShardBackend: Send {
    /// Human-readable address/identity for diagnostics.
    fn describe(&self) -> String;

    /// Predicts a batch of keyed, encoded queries, answered in order.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Timeout`]/[`HdcError::Transport`] on transport
    /// failure, or the shard's own error.
    fn predict_encoded_many(
        &mut self,
        pairs: Vec<(String, BinaryHypervector)>,
    ) -> Result<Vec<Prediction>, HdcError>;

    /// Predicts a batch of keyed, encoded queries' real-valued labels.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Timeout`]/[`HdcError::Transport`] on transport
    /// failure, or the shard's own error.
    fn predict_value_encoded_many(
        &mut self,
        pairs: Vec<(String, BinaryHypervector)>,
    ) -> Result<Vec<ValuePrediction>, HdcError>;

    /// Stores an encoded hypervector under `key`; `true` if replaced.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Timeout`]/[`HdcError::Transport`] on transport
    /// failure, or the shard's own error.
    fn insert(&mut self, key: String, hv: BinaryHypervector) -> Result<bool, HdcError>;

    /// Removes a stored entry; `true` if the key was stored.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Timeout`]/[`HdcError::Transport`] on transport
    /// failure, or the shard's own error.
    fn remove(&mut self, key: &str) -> Result<bool, HdcError>;

    /// Folds one encoded training observation into the shard's online
    /// trainer.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Timeout`]/[`HdcError::Transport`] on transport
    /// failure, or the shard's own error.
    fn fit_encoded(&mut self, hv: BinaryHypervector, label: usize) -> Result<(), HdcError>;

    /// Folds one encoded `(query, value)` observation into the shard's
    /// online regression trainer.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Timeout`]/[`HdcError::Transport`] on transport
    /// failure, or the shard's own error.
    fn fit_value_encoded(&mut self, hv: BinaryHypervector, value: f64) -> Result<(), HdcError>;

    /// Publishes a new generation from the shard's accumulated
    /// observations, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Timeout`]/[`HdcError::Transport`] on transport
    /// failure, or the shard's own error.
    fn refresh(&mut self) -> Result<u64, HdcError>;

    /// The shard's runtime statistics (including its identity section).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Timeout`]/[`HdcError::Transport`] on transport
    /// failure, or the shard's own error.
    fn stats(&mut self) -> Result<RuntimeStats, HdcError>;

    /// Liveness probe: `(generation, uptime_us)`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Timeout`]/[`HdcError::Transport`] on transport
    /// failure, or [`HdcError::ServiceUnavailable`] for a dead runtime.
    fn ping(&mut self) -> Result<(u64, u64), HdcError>;

    /// Streams the shard's full state (spec, trainer accumulators, item
    /// memories) — the donor half of a warm join.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Timeout`]/[`HdcError::Transport`] on transport
    /// failure, or the shard's own error.
    fn snapshot(&mut self) -> Result<Snapshot, HdcError>;

    /// Adopts a streamed snapshot (trainer state replaced, items merged),
    /// returning the published generation — the receiving half of a warm
    /// join.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Timeout`]/[`HdcError::Transport`] on transport
    /// failure, or the shard's own error (including a spec mismatch).
    fn restore(&mut self, snapshot: &Snapshot) -> Result<u64, HdcError>;
}

/// An in-process shard: a [`RuntimeHandle`] behind the [`ShardBackend`]
/// seam, so a cluster can mix in-process and remote shards (or be tested
/// entirely in one process).
pub struct LocalShard<X: ?Sized + ToOwned> {
    handle: RuntimeHandle<X>,
}

impl<X: ?Sized + ToOwned> LocalShard<X> {
    /// Wraps a runtime handle as a cluster shard.
    pub fn new(handle: RuntimeHandle<X>) -> Self {
        Self { handle }
    }
}

impl<X: ?Sized + ToOwned> fmt::Debug for LocalShard<X> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LocalShard").finish_non_exhaustive()
    }
}

impl<X> ShardBackend for LocalShard<X>
where
    X: ?Sized + ToOwned + Sync + 'static,
    X::Owned: Send + 'static,
{
    fn describe(&self) -> String {
        "local".into()
    }

    fn predict_encoded_many(
        &mut self,
        pairs: Vec<(String, BinaryHypervector)>,
    ) -> Result<Vec<Prediction>, HdcError> {
        self.handle.predict_encoded_many(pairs)
    }

    fn predict_value_encoded_many(
        &mut self,
        pairs: Vec<(String, BinaryHypervector)>,
    ) -> Result<Vec<ValuePrediction>, HdcError> {
        self.handle.predict_value_encoded_many(pairs)
    }

    fn insert(&mut self, key: String, hv: BinaryHypervector) -> Result<bool, HdcError> {
        self.handle.insert(key, hv)
    }

    fn remove(&mut self, key: &str) -> Result<bool, HdcError> {
        self.handle.remove(key)
    }

    fn fit_encoded(&mut self, hv: BinaryHypervector, label: usize) -> Result<(), HdcError> {
        self.handle.fit_encoded(hv, label)
    }

    fn fit_value_encoded(&mut self, hv: BinaryHypervector, value: f64) -> Result<(), HdcError> {
        self.handle.fit_value_encoded(hv, value)
    }

    fn refresh(&mut self) -> Result<u64, HdcError> {
        self.handle.refresh()
    }

    fn stats(&mut self) -> Result<RuntimeStats, HdcError> {
        self.handle.stats()
    }

    fn ping(&mut self) -> Result<(u64, u64), HdcError> {
        if self.handle.is_alive() {
            Ok((
                self.handle.generation().id(),
                self.handle.uptime().as_micros() as u64,
            ))
        } else {
            Err(HdcError::ServiceUnavailable)
        }
    }

    fn snapshot(&mut self) -> Result<Snapshot, HdcError> {
        self.handle.snapshot()
    }

    fn restore(&mut self, snapshot: &Snapshot) -> Result<u64, HdcError> {
        self.handle.restore(snapshot.clone())
    }
}

/// A shard process reached over the framed wire protocol: a
/// [`BlockingClient`] (with its bounded timeouts and connect retries)
/// behind the [`ShardBackend`] seam.
#[derive(Debug)]
pub struct RemoteShard {
    addr: String,
    client: BlockingClient,
}

impl RemoteShard {
    /// Connects to the shard process listening at `addr` with the default
    /// [`ClientConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Timeout`]/[`HdcError::Transport`] if no
    /// connection can be established within the configured attempts.
    pub fn connect(addr: &str) -> Result<Self, HdcError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// [`connect`](Self::connect) with explicit deadlines and retry
    /// policy.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Timeout`]/[`HdcError::Transport`] if no
    /// connection can be established within the configured attempts.
    pub fn connect_with(addr: &str, config: ClientConfig) -> Result<Self, HdcError> {
        let client =
            BlockingClient::connect_with(addr, config).map_err(|e| transport("connect", &e))?;
        Ok(Self {
            addr: addr.to_owned(),
            client,
        })
    }

    /// The address this shard was connected at.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }
}

/// Maps a client-side `io::Error` onto the serving error taxonomy:
/// expired deadlines become [`HdcError::Timeout`], everything else
/// (refused/reset connections, malformed frames, relayed server errors)
/// becomes [`HdcError::Transport`].
fn transport(operation: &'static str, error: &io::Error) -> HdcError {
    match error.kind() {
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => HdcError::Timeout { operation },
        _ => HdcError::Transport(format!("{operation}: {error}")),
    }
}

impl ShardBackend for RemoteShard {
    fn describe(&self) -> String {
        self.addr.clone()
    }

    fn predict_encoded_many(
        &mut self,
        pairs: Vec<(String, BinaryHypervector)>,
    ) -> Result<Vec<Prediction>, HdcError> {
        let mut out = Vec::with_capacity(pairs.len());
        let mut rest = pairs;
        while !rest.is_empty() {
            let chunk: Vec<_> = rest.drain(..rest.len().min(REMOTE_BATCH_ROWS)).collect();
            out.extend(
                self.client
                    .predict_batch(chunk)
                    .map_err(|e| transport("predict", &e))?,
            );
        }
        Ok(out)
    }

    fn predict_value_encoded_many(
        &mut self,
        pairs: Vec<(String, BinaryHypervector)>,
    ) -> Result<Vec<ValuePrediction>, HdcError> {
        let mut out = Vec::with_capacity(pairs.len());
        let mut rest = pairs;
        while !rest.is_empty() {
            let chunk: Vec<_> = rest.drain(..rest.len().min(REMOTE_BATCH_ROWS)).collect();
            out.extend(
                self.client
                    .predict_value_batch(chunk)
                    .map_err(|e| transport("predict_value", &e))?,
            );
        }
        Ok(out)
    }

    fn insert(&mut self, key: String, hv: BinaryHypervector) -> Result<bool, HdcError> {
        self.client
            .insert(&key, &hv)
            .map_err(|e| transport("insert", &e))
    }

    fn remove(&mut self, key: &str) -> Result<bool, HdcError> {
        self.client.remove(key).map_err(|e| transport("remove", &e))
    }

    fn fit_encoded(&mut self, hv: BinaryHypervector, label: usize) -> Result<(), HdcError> {
        self.client
            .fit(&hv, label)
            .map_err(|e| transport("fit", &e))
    }

    fn fit_value_encoded(&mut self, hv: BinaryHypervector, value: f64) -> Result<(), HdcError> {
        self.client
            .fit_value(&hv, value)
            .map_err(|e| transport("fit_value", &e))
    }

    fn refresh(&mut self) -> Result<u64, HdcError> {
        self.client.refresh().map_err(|e| transport("refresh", &e))
    }

    fn stats(&mut self) -> Result<RuntimeStats, HdcError> {
        self.client.stats().map_err(|e| transport("stats", &e))
    }

    fn ping(&mut self) -> Result<(u64, u64), HdcError> {
        self.client.ping().map_err(|e| transport("ping", &e))
    }

    fn snapshot(&mut self) -> Result<Snapshot, HdcError> {
        self.client
            .snapshot()
            .map_err(|e| transport("snapshot", &e))
    }

    fn restore(&mut self, snapshot: &Snapshot) -> Result<u64, HdcError> {
        self.client
            .restore(snapshot)
            .map_err(|e| transport("restore", &e))
    }
}

/// How the router pays its per-shard sub-requests.
///
/// Routed batches, replicated fits, refreshes and stats probes all touch
/// several shards per call; this chooses whether those shard calls run
/// one at a time or overlapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FanOut {
    /// One shard at a time, in shard order — the pre-concurrency
    /// behaviour, kept selectable for benchmarking and debugging.
    Serial,
    /// One scoped thread per involved shard, one in-flight request each
    /// (default). Shard calls are mostly transport waits, so overlapping
    /// them helps even on a single core; responses are still merged in
    /// input order and errors reported in shard order, so results are
    /// identical to [`FanOut::Serial`] in every outcome.
    #[default]
    Concurrent,
}

/// Applies `op` to every shard not in `skip` — serially, or overlapped
/// with one scoped thread per shard — returning one slot per shard **in
/// shard order** (`None` for skipped shards). Shard-order results are
/// what keeps error reporting identical between the two modes. A panic
/// inside `op` is resumed on the caller.
fn par_each<R: Send>(
    shards: &mut [(usize, Box<dyn ShardBackend>)],
    skip: &BTreeSet<usize>,
    concurrent: bool,
    op: impl Fn(&mut dyn ShardBackend) -> Result<R, HdcError> + Sync,
) -> Vec<Option<Result<R, HdcError>>> {
    let involved = shards.iter().filter(|(id, _)| !skip.contains(id)).count();
    if concurrent && involved > 1 {
        thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter_mut()
                .map(|(id, shard)| {
                    if skip.contains(id) {
                        None
                    } else {
                        let op = &op;
                        Some(scope.spawn(move || op(shard.as_mut())))
                    }
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| {
                    handle.map(|handle| {
                        handle
                            .join()
                            .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
                    })
                })
                .collect()
        })
    } else {
        shards
            .iter_mut()
            .map(|(id, shard)| {
                if skip.contains(id) {
                    None
                } else {
                    Some(op(shard.as_mut()))
                }
            })
            .collect()
    }
}

/// The routing front-end of a shard cluster: maps keys to shard processes
/// over the same consistent-hash ring an in-process
/// [`ShardedModel`](crate::ShardedModel) routes by, fans keyed operations
/// out to their owners, replicates training and refreshes to every shard,
/// and merges responses in input order.
///
/// For the same `(RingConfig, seed)` and shard count, key→shard
/// assignment is identical to `ShardedModel`'s — which, together with
/// replicated heads, makes cluster predictions bit-identical to the
/// in-process fleet's for any shard count.
///
/// Multi-shard operations (batch predicts, replicated fits, refresh,
/// stats, ping) pay their per-shard calls **concurrently** by default —
/// see [`FanOut`] and [`set_fan_out`](Self::set_fan_out).
pub struct ClusterRouter {
    ring: HdcHashRing<usize>,
    shards: Vec<(usize, Box<dyn ShardBackend>)>,
    next_id: usize,
    config: RingConfig,
    dim: usize,
    fan_out_mode: FanOut,
    /// Shards whose online trainer missed a replicated observation (the
    /// transport failed mid-fan-out). They stop receiving replicated
    /// observations and are healed from a healthy peer's trainer snapshot
    /// before the next refresh or membership change publishes anything
    /// derived from trainer state — so served heads never diverge.
    lagging: BTreeSet<usize>,
    /// Item-memory entries that moved to a new owner but could not be
    /// dropped from their old one. The ring no longer routes to these
    /// copies, so until the removal is retried (before the next
    /// membership change) they cost only key-count drift in
    /// [`cluster_stats`](Self::cluster_stats).
    pending_removals: Vec<(usize, String)>,
}

impl fmt::Debug for ClusterRouter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterRouter")
            .field("shards", &self.shard_ids())
            .field("dim", &self.dim)
            .finish()
    }
}

impl ClusterRouter {
    /// Builds a router over an initial fleet of shard backends, assigning
    /// ids `0..backends.len()` in order — the exact ring an in-process
    /// `ShardedModel::with_head(head, dim, n, config, seed)` routes by.
    ///
    /// Every backend is probed for its `stats` once, to learn and
    /// cross-check the fleet's dimensionality.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::EmptyInput`] for an empty fleet, a transport
    /// error if a backend is unreachable, and
    /// [`HdcError::DimensionMismatch`] if the shards disagree on `d`.
    pub fn new(
        backends: Vec<Box<dyn ShardBackend>>,
        config: RingConfig,
        seed: u64,
    ) -> Result<Self, HdcError> {
        if backends.is_empty() {
            return Err(HdcError::EmptyInput);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ring =
            HdcHashRing::with_replicas(config.positions, config.dim, config.replicas, &mut rng)?;
        let mut shards = Vec::with_capacity(backends.len());
        let mut dim = 0usize;
        for (id, mut backend) in backends.into_iter().enumerate() {
            ring.add_node(id);
            let stats = backend.stats()?;
            let found = stats.dim as usize;
            if id == 0 {
                dim = found;
            } else if found != dim {
                return Err(HdcError::DimensionMismatch {
                    expected: dim,
                    found,
                });
            }
            shards.push((id, backend));
        }
        Ok(Self {
            ring,
            next_id: shards.len(),
            shards,
            config,
            dim,
            lagging: BTreeSet::new(),
            pending_removals: Vec::new(),
            fan_out_mode: FanOut::default(),
        })
    }

    /// Number of live shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// How multi-shard operations pay their per-shard calls (see
    /// [`FanOut`]).
    #[must_use]
    pub fn fan_out_mode(&self) -> FanOut {
        self.fan_out_mode
    }

    /// Selects serial or concurrent shard fan-out. Both modes produce
    /// identical results — [`FanOut::Serial`] exists for benchmarking the
    /// overlap and for debugging with deterministic shard call order.
    pub fn set_fan_out(&mut self, mode: FanOut) {
        self.fan_out_mode = mode;
    }

    /// The ids of the live shards, in join order.
    #[must_use]
    pub fn shard_ids(&self) -> Vec<usize> {
        self.shards.iter().map(|(id, _)| *id).collect()
    }

    /// Query dimensionality `d` (learned from the shards at construction).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The shard id a key routes to — identical to
    /// [`ShardedModel::shard_of`](crate::ShardedModel::shard_of) for the
    /// same ring geometry, seed and shard history.
    #[must_use]
    pub fn shard_of<Q: Hash>(&self, key: &Q) -> usize {
        *self
            .ring
            .lookup(key)
            .expect("a cluster router always keeps at least one shard")
    }

    fn position_of<Q: Hash>(&self, key: &Q) -> usize {
        let owner = self.shard_of(key);
        self.shards
            .iter()
            .position(|(id, _)| *id == owner)
            .expect("every ring node has a backend")
    }

    fn check_dim(&self, found: usize) -> Result<(), HdcError> {
        if found != self.dim {
            return Err(HdcError::DimensionMismatch {
                expected: self.dim,
                found,
            });
        }
        Ok(())
    }

    /// Predicts one keyed, encoded query on its owning shard.
    ///
    /// # Errors
    ///
    /// Returns a transport error for an unreachable owner, or the shard's
    /// own error.
    pub fn predict(&mut self, key: &str, hv: &BinaryHypervector) -> Result<Prediction, HdcError> {
        self.check_dim(hv.dim())?;
        let position = self.position_of(&key);
        let mut replies = self.shards[position]
            .1
            .predict_encoded_many(vec![(key.to_owned(), hv.clone())])?;
        replies
            .pop()
            .ok_or_else(|| HdcError::Transport("shard answered an empty batch".into()))
    }

    /// Predicts a batch of keyed, encoded queries: grouped per owning
    /// shard, fanned out, merged back **in input order** — the same
    /// route/merge contract as
    /// [`ShardedModel::predict_batch`](crate::ShardedModel::predict_batch).
    ///
    /// # Errors
    ///
    /// Returns a transport error for an unreachable shard, or a shard's
    /// own error.
    pub fn predict_batch(
        &mut self,
        pairs: &[(String, BinaryHypervector)],
    ) -> Result<Vec<Prediction>, HdcError> {
        self.fan_out(pairs, Prediction::default(), |shard, sub| {
            shard.predict_encoded_many(sub)
        })
    }

    /// Predicts one keyed, encoded query's real-valued label on its
    /// owning shard.
    ///
    /// # Errors
    ///
    /// Returns a transport error for an unreachable owner, or the shard's
    /// own error.
    pub fn predict_value(
        &mut self,
        key: &str,
        hv: &BinaryHypervector,
    ) -> Result<ValuePrediction, HdcError> {
        self.check_dim(hv.dim())?;
        let position = self.position_of(&key);
        let mut replies = self.shards[position]
            .1
            .predict_value_encoded_many(vec![(key.to_owned(), hv.clone())])?;
        replies
            .pop()
            .ok_or_else(|| HdcError::Transport("shard answered an empty batch".into()))
    }

    /// Predicts a batch of keyed, encoded queries' real-valued labels,
    /// merged in input order — the regression twin of
    /// [`predict_batch`](Self::predict_batch).
    ///
    /// # Errors
    ///
    /// Returns a transport error for an unreachable shard, or a shard's
    /// own error.
    pub fn predict_value_batch(
        &mut self,
        pairs: &[(String, BinaryHypervector)],
    ) -> Result<Vec<ValuePrediction>, HdcError> {
        self.fan_out(pairs, ValuePrediction::default(), |shard, sub| {
            shard.predict_value_encoded_many(sub)
        })
    }

    /// The shared route → fan out → merge path behind both batch forms.
    ///
    /// Each involved shard receives its owned sub-batch on its own scoped
    /// thread (under [`FanOut::Concurrent`]; serially otherwise), keeping
    /// exactly one in-flight request per shard. Replies are merged back in
    /// input order and a failure reports the first error **in shard
    /// order**, so both modes are observationally identical.
    fn fan_out<R: Clone + Send>(
        &mut self,
        pairs: &[(String, BinaryHypervector)],
        placeholder: R,
        call: impl Fn(&mut dyn ShardBackend, Vec<(String, BinaryHypervector)>) -> Result<Vec<R>, HdcError>
            + Sync,
    ) -> Result<Vec<R>, HdcError> {
        for (_, hv) in pairs {
            self.check_dim(hv.dim())?;
        }
        let mut routed: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (index, (key, _)) in pairs.iter().enumerate() {
            routed[self.position_of(key)].push(index);
        }
        // Owned per-shard sub-batches, so each scoped thread borrows
        // nothing from its siblings.
        let subs: Vec<Option<Vec<(String, BinaryHypervector)>>> = routed
            .iter()
            .map(|indices| {
                if indices.is_empty() {
                    None
                } else {
                    Some(indices.iter().map(|&index| pairs[index].clone()).collect())
                }
            })
            .collect();
        let involved = subs.iter().filter(|sub| sub.is_some()).count();
        let replies: Vec<Option<Result<Vec<R>, HdcError>>> =
            if self.fan_out_mode == FanOut::Concurrent && involved > 1 {
                thread::scope(|scope| {
                    let handles: Vec<_> = self
                        .shards
                        .iter_mut()
                        .zip(subs)
                        .map(|((_, shard), sub)| {
                            sub.map(|sub| {
                                let call = &call;
                                scope.spawn(move || call(shard.as_mut(), sub))
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|handle| {
                            handle.map(|handle| {
                                handle
                                    .join()
                                    .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
                            })
                        })
                        .collect()
                })
            } else {
                self.shards
                    .iter_mut()
                    .zip(subs)
                    .map(|((_, shard), sub)| sub.map(|sub| call(shard.as_mut(), sub)))
                    .collect()
            };
        let mut merged = vec![placeholder; pairs.len()];
        for ((position, indices), reply) in routed.into_iter().enumerate().zip(replies) {
            let Some(reply) = reply else {
                continue;
            };
            let shard_replies = reply?;
            if shard_replies.len() != indices.len() {
                return Err(HdcError::Transport(format!(
                    "shard {} answered {} of {} queries",
                    self.shards[position].0,
                    shard_replies.len(),
                    indices.len()
                )));
            }
            for (index, reply) in indices.into_iter().zip(shard_replies) {
                merged[index] = reply;
            }
        }
        Ok(merged)
    }

    /// Stores an encoded hypervector on the owning shard; `true` if an
    /// entry was replaced.
    ///
    /// # Errors
    ///
    /// Returns a transport error for an unreachable owner, or the shard's
    /// own error.
    pub fn insert(&mut self, key: &str, hv: &BinaryHypervector) -> Result<bool, HdcError> {
        self.check_dim(hv.dim())?;
        let position = self.position_of(&key);
        self.shards[position].1.insert(key.to_owned(), hv.clone())
    }

    /// Removes a stored entry from the owning shard; `true` if the key
    /// was stored.
    ///
    /// # Errors
    ///
    /// Returns a transport error for an unreachable owner, or the shard's
    /// own error.
    pub fn remove(&mut self, key: &str) -> Result<bool, HdcError> {
        let position = self.position_of(&key);
        self.shards[position].1.remove(key)
    }

    /// Replicates one encoded training observation to **every** shard —
    /// the invariant that keeps the per-shard trainer states (and
    /// therefore the published heads) identical across the cluster.
    ///
    /// If a shard's transport fails mid-fan-out, the observation is still
    /// applied to the reachable shards and the failed ones are marked
    /// **lagging** (see [`lagging_shards`](Self::lagging_shards)): they
    /// stop receiving replicated observations and adopt a healthy peer's
    /// trainer state wholesale before the next [`refresh`](Self::refresh)
    /// or membership change — so a partial failure never becomes a
    /// permanent divergence, and retrying a failed call never
    /// double-fits.
    ///
    /// # Errors
    ///
    /// Returns the first shard's error only if **no** shard accepted the
    /// observation; the cluster is then unchanged and the call is safe to
    /// retry.
    pub fn fit_encoded(&mut self, hv: &BinaryHypervector, label: usize) -> Result<(), HdcError> {
        self.check_dim(hv.dim())?;
        self.replicate(|shard| shard.fit_encoded(hv.clone(), label))
    }

    /// Replicates one encoded `(query, value)` observation to every shard
    /// — the regression twin of [`fit_encoded`](Self::fit_encoded), with
    /// the same partial-failure recovery.
    ///
    /// # Errors
    ///
    /// Returns the first shard's error only if **no** shard accepted the
    /// observation; the cluster is then unchanged and the call is safe to
    /// retry.
    pub fn fit_value_encoded(
        &mut self,
        hv: &BinaryHypervector,
        value: f64,
    ) -> Result<(), HdcError> {
        self.check_dim(hv.dim())?;
        self.replicate(|shard| shard.fit_value_encoded(hv.clone(), value))
    }

    /// Fans one training observation out to every non-lagging shard.
    /// Shards that fail are marked lagging, to be healed by
    /// [`resync_lagging`](Self::resync_lagging) — unless **every**
    /// reachable shard failed, in which case nothing was applied anywhere
    /// and the first error is returned so the caller can retry without
    /// double-fitting.
    fn replicate(
        &mut self,
        apply: impl Fn(&mut dyn ShardBackend) -> Result<(), HdcError> + Sync,
    ) -> Result<(), HdcError> {
        let concurrent = self.fan_out_mode == FanOut::Concurrent;
        let outcomes = par_each(&mut self.shards, &self.lagging, concurrent, apply);
        let mut failed: Vec<usize> = Vec::new();
        let mut first_error = None;
        let mut applied = 0usize;
        for ((id, _), outcome) in self.shards.iter().zip(outcomes) {
            match outcome {
                None => {} // lagging, skipped
                Some(Ok(())) => applied += 1,
                Some(Err(error)) => {
                    failed.push(*id);
                    if first_error.is_none() {
                        first_error = Some(error);
                    }
                }
            }
        }
        if applied == 0 {
            // No shard holds the observation, so nobody diverged: report
            // the failure instead of marking the whole cluster lagging.
            return Err(first_error.unwrap_or(HdcError::ServiceUnavailable));
        }
        self.lagging.extend(failed);
        Ok(())
    }

    /// Shards currently lagging the replicated trainer state (a fit
    /// fan-out failed against them). Until healed they are skipped by
    /// further fits and keep serving the last published head; the next
    /// [`refresh`](Self::refresh), [`join`](Self::join) or
    /// [`leave`](Self::leave) heals them from a healthy peer's snapshot
    /// first.
    #[must_use]
    pub fn lagging_shards(&self) -> Vec<usize> {
        self.lagging.iter().copied().collect()
    }

    /// Item-memory entries whose move to a new owner succeeded but whose
    /// removal from the old owner is still deferred (the old owner was
    /// unreachable). The ring no longer routes to these copies; they are
    /// flushed before the next membership change.
    #[must_use]
    pub fn deferred_cleanup(&self) -> usize {
        self.pending_removals.len()
    }

    /// Heals lagging shards: a healthy peer's trainer state (items
    /// stripped) is streamed to each lagging shard, which adopts it
    /// wholesale — replicated training makes the donor's accumulators
    /// exactly the state the lagging shard missed. Returns whether any
    /// shard was healed. No-op when nothing lags.
    fn resync_lagging(&mut self) -> Result<bool, HdcError> {
        if self.lagging.is_empty() {
            return Ok(false);
        }
        let donor = self
            .shards
            .iter()
            .position(|(id, _)| !self.lagging.contains(id))
            .ok_or(HdcError::ServiceUnavailable)?;
        let mut stream = self.shards[donor].1.snapshot()?;
        stream.replace_items(Vec::new());
        let ids: Vec<usize> = self.lagging.iter().copied().collect();
        for id in ids {
            let Some(position) = self.shards.iter().position(|(sid, _)| *sid == id) else {
                self.lagging.remove(&id);
                continue;
            };
            self.shards[position].1.restore(&stream)?;
            self.lagging.remove(&id);
        }
        Ok(true)
    }

    /// Retries the deferred removals of entries whose move to a new owner
    /// committed but whose cleanup on the old owner failed.
    fn flush_pending_removals(&mut self) -> Result<(), HdcError> {
        let pending = std::mem::take(&mut self.pending_removals);
        let mut first_error = None;
        for (id, key) in pending {
            let Some(position) = self.shards.iter().position(|(sid, _)| *sid == id) else {
                // The stale holder itself left the cluster: nothing to do.
                continue;
            };
            if let Err(error) = self.shards[position].1.remove(&key) {
                self.pending_removals.push((id, key));
                if first_error.is_none() {
                    first_error = Some(error);
                }
            }
        }
        first_error.map_or(Ok(()), Err)
    }

    /// Brings the cluster back to its fully-consistent resting state
    /// before a membership change: deferred removals are flushed and
    /// lagging trainers healed (followed by a full refresh so every
    /// served head reflects the same trainer state again).
    fn repair(&mut self) -> Result<(), HdcError> {
        self.flush_pending_removals()?;
        if self.resync_lagging()? {
            self.refresh_all()?;
        }
        Ok(())
    }

    /// Replicates a generation refresh to every shard, returning the
    /// highest published generation id. Because observations are
    /// replicated in arrival order and the accumulators are commutative
    /// counters, every shard finalizes the **same** head — ids may drift
    /// (e.g. after a warm join), the weights never do.
    ///
    /// Lagging shards are healed from a healthy peer's trainer snapshot
    /// before anything publishes, so the refreshed heads are identical
    /// across the cluster even after a partial fit failure.
    ///
    /// # Errors
    ///
    /// Returns the first shard's error. A refresh that failed partway is
    /// safe to retry: trainer states are identical across shards, so a
    /// repeated refresh republishes the same weights everywhere.
    pub fn refresh(&mut self) -> Result<u64, HdcError> {
        self.resync_lagging()?;
        self.refresh_all()
    }

    fn refresh_all(&mut self) -> Result<u64, HdcError> {
        let concurrent = self.fan_out_mode == FanOut::Concurrent;
        let outcomes = par_each(&mut self.shards, &BTreeSet::new(), concurrent, |shard| {
            shard.refresh()
        });
        let mut latest = 0;
        for outcome in outcomes.into_iter().flatten() {
            latest = latest.max(outcome?);
        }
        Ok(latest)
    }

    /// Probes every shard, returning `(highest generation, smallest
    /// uptime_us)` — a cluster is only as warm as its youngest shard.
    ///
    /// # Errors
    ///
    /// Returns the first unreachable/dead shard's error: one dead shard
    /// makes the cluster probe unhealthy.
    pub fn ping(&mut self) -> Result<(u64, u64), HdcError> {
        let concurrent = self.fan_out_mode == FanOut::Concurrent;
        let outcomes = par_each(&mut self.shards, &BTreeSet::new(), concurrent, |shard| {
            shard.ping()
        });
        let mut generation = 0;
        let mut uptime = u64::MAX;
        for outcome in outcomes.into_iter().flatten() {
            let (shard_generation, shard_uptime) = outcome?;
            generation = generation.max(shard_generation);
            uptime = uptime.min(shard_uptime);
        }
        Ok((generation, uptime))
    }

    /// Per-shard `(cluster shard id, runtime stats)` — each entry carries
    /// the shard's own identity section (`name`, `ring_positions`,
    /// `keys`).
    ///
    /// # Errors
    ///
    /// Returns the first unreachable shard's error.
    pub fn shard_stats(&mut self) -> Result<Vec<(usize, RuntimeStats)>, HdcError> {
        let concurrent = self.fan_out_mode == FanOut::Concurrent;
        let outcomes = par_each(&mut self.shards, &BTreeSet::new(), concurrent, |shard| {
            shard.stats()
        });
        let mut out = Vec::with_capacity(self.shards.len());
        for ((id, _), outcome) in self.shards.iter().zip(outcomes) {
            let Some(stats) = outcome.transpose()? else {
                continue;
            };
            out.push((*id, stats));
        }
        Ok(out)
    }

    /// One aggregate [`RuntimeStats`] for the whole cluster: counters are
    /// summed, `shard_loads` lists each cluster shard's key count, the
    /// generation is the highest and the uptime the smallest across
    /// shards. Latency percentiles and batch-size histograms are not
    /// aggregatable across processes and are reported zeroed.
    ///
    /// # Errors
    ///
    /// Returns the first unreachable shard's error.
    pub fn cluster_stats(&mut self) -> Result<RuntimeStats, HdcError> {
        let per_shard = self.shard_stats()?;
        let mut aggregate = RuntimeStats {
            generation: 0,
            uptime_us: u64::MAX,
            name: format!("cluster({})", per_shard.len()),
            ring_positions: self.config.positions as u64,
            dim: self.dim as u64,
            classes: per_shard.first().map_or(0, |(_, s)| s.classes),
            shard_loads: Vec::with_capacity(per_shard.len()),
            keys: 0,
            last_remap_fraction: None,
            metrics: MetricsSnapshot {
                queue_depth: 0,
                requests: 0,
                batches: 0,
                inserts: 0,
                removes: 0,
                fits: 0,
                mean_batch_size: 0.0,
                batch_sizes: Vec::new(),
                latency_us_p50: 0.0,
                latency_us_p95: 0.0,
                latency_us_p99: 0.0,
            },
        };
        for (id, stats) in per_shard {
            aggregate.generation = aggregate.generation.max(stats.generation);
            aggregate.uptime_us = aggregate.uptime_us.min(stats.uptime_us);
            aggregate.shard_loads.push((id as u64, stats.keys));
            aggregate.keys += stats.keys;
            aggregate.metrics.queue_depth += stats.metrics.queue_depth;
            aggregate.metrics.requests += stats.metrics.requests;
            aggregate.metrics.batches += stats.metrics.batches;
            aggregate.metrics.inserts += stats.metrics.inserts;
            aggregate.metrics.removes += stats.metrics.removes;
            aggregate.metrics.fits += stats.metrics.fits;
        }
        if aggregate.uptime_us == u64::MAX {
            aggregate.uptime_us = 0;
        }
        if aggregate.metrics.batches > 0 {
            aggregate.metrics.mean_batch_size =
                aggregate.metrics.requests as f64 / aggregate.metrics.batches as f64;
        }
        Ok(aggregate)
    }

    /// Warm-joins a fresh shard: a donor peer's trainer state plus the
    /// item-memory entries the grown ring assigns to the newcomer are
    /// streamed to it as one [`Snapshot`], then removed from their old
    /// owners. Returns `(assigned id, entries moved)`.
    ///
    /// The joining shard may be completely blank (same spec, zero
    /// observations) — after the join it answers bit-identically to its
    /// peers.
    ///
    /// The join **commits** the moment the newcomer has adopted the
    /// streamed snapshot. Any failure before that point rolls the ring
    /// back and leaves the cluster unchanged. After that point the
    /// newcomer is a full member even if dropping a moved entry from its
    /// old owner fails: the ring already routes those keys to the
    /// newcomer, so such stale copies are unreachable — they are retried
    /// before the next membership change and until then cost only
    /// key-count drift in [`cluster_stats`](Self::cluster_stats) (see
    /// [`deferred_cleanup`](Self::deferred_cleanup)).
    ///
    /// # Errors
    ///
    /// Returns a transport error if a peer or the newcomer is
    /// unreachable, [`HdcError::Snapshot`] if the newcomer's spec
    /// differs, or the error of a pending repair (deferred cleanup /
    /// lagging-trainer heal) that could not complete first. In every
    /// error case the cluster routes exactly as before the call.
    pub fn join(&mut self, mut backend: Box<dyn ShardBackend>) -> Result<(usize, u64), HdcError> {
        // Settle earlier partial failures first: stale copies must be
        // gone before peers donate their item partitions, and the donor
        // trainer state must not be lagging.
        self.repair()?;
        let id = self.next_id;
        self.ring.add_node(id);
        // Gather, per peer, the entries the grown ring now assigns to the
        // newcomer — and a donor trainer state (any peer: replicated
        // training keeps them identical).
        let result = (|| {
            let mut donor: Option<Snapshot> = None;
            let mut movers: Vec<(String, BinaryHypervector)> = Vec::new();
            let mut moved_keys: Vec<Vec<String>> = Vec::with_capacity(self.shards.len());
            for (_, shard) in &mut self.shards {
                let mut snapshot = shard.snapshot()?;
                let items = snapshot.take_items();
                let mut mine = Vec::new();
                for (key, hv) in items {
                    if self.ring.lookup(&key) == Some(&id) {
                        mine.push(key.clone());
                        movers.push((key, hv));
                    }
                }
                moved_keys.push(mine);
                if donor.is_none() {
                    donor = Some(snapshot);
                }
            }
            let mut stream = donor.expect("a router always keeps at least one shard");
            let moved = movers.len() as u64;
            stream.replace_items(movers);
            backend.restore(&stream)?;
            Ok((moved, moved_keys))
        })();
        match result {
            Ok((moved, moved_keys)) => {
                // The newcomer holds every moved entry: commit membership
                // *before* the cleanup, so the ring/backend invariant
                // holds even if a peer dies mid-removal.
                self.next_id += 1;
                self.shards.push((id, backend));
                for (index, keys) in moved_keys.into_iter().enumerate() {
                    let peer = self.shards[index].0;
                    let mut keys = keys.into_iter();
                    for key in keys.by_ref() {
                        if self.shards[index].1.remove(&key).is_err() {
                            // The peer is unreachable: defer its cleanup
                            // instead of failing a join that has already
                            // taken effect.
                            self.pending_removals.push((peer, key));
                            break;
                        }
                    }
                    self.pending_removals.extend(keys.map(|key| (peer, key)));
                }
                Ok((id, moved))
            }
            Err(error) => {
                self.ring.remove_node(&id);
                Err(error)
            }
        }
    }

    /// Drains and drops shard `id`: its item-memory entries are re-routed
    /// through the shrunk ring onto the remaining shards **before** the
    /// shard is dropped — if any transfer fails, the ring rolls back and
    /// the leaver keeps serving, so a failed leave never strands an
    /// entry. Returns `(removed, entries drained)` — `(false, 0)` for an
    /// unknown id or the last shard.
    ///
    /// The shard *process* keeps running (and keeps its replicated head);
    /// only the router stops routing to it.
    ///
    /// # Errors
    ///
    /// Returns a transport error if the leaver or a receiving shard is
    /// unreachable, or the error of a pending repair (deferred cleanup /
    /// lagging-trainer heal) that could not complete first. In every
    /// error case the cluster routes exactly as before the call and the
    /// leaver still holds all of its entries.
    pub fn leave(&mut self, id: usize) -> Result<(bool, u64), HdcError> {
        if self.shards.len() <= 1 {
            return Ok((false, 0));
        }
        let Some(position) = self.shards.iter().position(|(sid, _)| *sid == id) else {
            return Ok((false, 0));
        };
        // Settle earlier partial failures first — in particular, stale
        // copies must be flushed before the drain re-inserts entries, or
        // a deferred removal could later delete a freshly drained entry.
        self.repair()?;
        let mut snapshot = self.shards[position].1.snapshot()?;
        let items = snapshot.take_items();
        let drained = items.len() as u64;
        // Shrink the ring first so the drained entries route to their new
        // owners — but keep the leaver's backend until every transfer
        // lands, so a failure can roll straight back.
        self.ring.remove_node(&id);
        let mut transferred: Vec<(usize, String)> = Vec::with_capacity(items.len());
        for (key, hv) in items {
            let owner = self.shard_of(&key);
            let target = self
                .shards
                .iter()
                .position(|(sid, _)| *sid == owner)
                .expect("every ring node has a backend");
            match self.shards[target].1.insert(key.clone(), hv) {
                Ok(_) => transferred.push((owner, key)),
                Err(error) => {
                    // Roll back: the leaver re-enters the ring (its node
                    // hypervectors are a pure function of its id, so
                    // routing is restored exactly) and still holds every
                    // entry. Copies already transferred — including the
                    // possibly half-applied failing one — are now
                    // unreachable and queued for deferred removal.
                    self.ring.add_node(id);
                    transferred.push((owner, key));
                    self.pending_removals.extend(transferred);
                    return Err(error);
                }
            }
        }
        self.shards.remove(position);
        self.lagging.remove(&id);
        Ok((true, drained))
    }
}

/// A framed-TCP front-end over a [`ClusterRouter`], speaking the same
/// wire protocol as a single-shard [`Server`](crate::Server) — so a
/// client cannot tell a cluster from one big runtime. Additionally
/// answers the cluster-membership opcodes (`shard_join`/`shard_leave`)
/// that shard runtimes refuse.
///
/// # Consistency vs. availability
///
/// Every request is serialized through one router lock — including
/// membership changes, which hold it for their full duration (peer
/// snapshots plus the snapshot stream to the newcomer, each call bounded
/// by the configured [`ClientConfig`] deadlines). Client traffic
/// therefore **stalls for the length of a join or leave**. That stall is
/// the single-writer consistency model: no request can ever observe a
/// half-moved ring, which is what keeps answers bit-identical through
/// churn. Splitting membership changes from the serving path (e.g. a
/// copy-on-write shard table) is a possible follow-up if join-time
/// stalls become a problem at scale.
#[derive(Debug)]
pub struct ClusterServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    router: Arc<Mutex<ClusterRouter>>,
}

impl ClusterServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections against the router. `clients` is the
    /// [`ClientConfig`] used to connect to shards named in `shard_join`
    /// requests.
    ///
    /// # Errors
    ///
    /// Returns `io::Error` if the address cannot be bound.
    pub fn spawn(
        addr: impl ToSocketAddrs,
        router: ClusterRouter,
        clients: ClientConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let router = Arc::new(Mutex::new(router));
        let accept = {
            let stop = Arc::clone(&stop);
            let router = Arc::clone(&router);
            thread::Builder::new()
                .name("hdc-cluster-accept".into())
                .spawn(move || accept_loop(&listener, &stop, &router, clients))
                .expect("spawning the cluster accept thread")
        };
        Ok(Self {
            local_addr,
            stop,
            accept: Some(accept),
            router,
        })
    }

    /// The bound address (with the ephemeral port resolved).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Runs `with` against the router behind the front-end (e.g. to join
    /// a shard programmatically while the server keeps accepting).
    pub fn with_router<T>(&self, with: impl FnOnce(&mut ClusterRouter) -> T) -> T {
        let mut router = self.router.lock().expect("cluster router lock");
        with(&mut router)
    }

    /// Stops accepting, closes every live connection and joins the
    /// server's threads, handing the router back.
    ///
    /// # Panics
    ///
    /// Panics if a connection handler panicked while holding the router.
    #[must_use]
    pub fn shutdown(mut self) -> ClusterRouter {
        self.stop_and_join();
        let router = Arc::clone(&self.router);
        drop(self);
        let router = Arc::try_unwrap(router)
            .unwrap_or_else(|_| panic!("all router references are joined at shutdown"));
        router.into_inner().expect("cluster router lock")
    }

    fn stop_and_join(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        let mut wake = self.local_addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake {
                SocketAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(wake);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for ClusterServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: &TcpListener,
    stop: &Arc<AtomicBool>,
    router: &Arc<Mutex<ClusterRouter>>,
    clients: ClientConfig,
) {
    let mut connections: Vec<(TcpStream, JoinHandle<()>)> = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        connections.retain(|(_, worker)| !worker.is_finished());
        let Ok(clone) = stream.try_clone() else {
            continue;
        };
        let router = Arc::clone(router);
        let worker = thread::Builder::new()
            .name("hdc-cluster-conn".into())
            .spawn(move || {
                let _ = serve_connection(stream, &router, clients);
            })
            .expect("spawning a cluster connection thread");
        connections.push((clone, worker));
    }
    for (stream, _) in &connections {
        let _ = stream.shutdown(Shutdown::Both);
    }
    for (_, worker) in connections {
        let _ = worker.join();
    }
}

fn serve_connection(
    stream: TcpStream,
    router: &Mutex<ClusterRouter>,
    clients: ClientConfig,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream.try_clone()?);
    loop {
        let request = match wire::read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return Ok(()),
            Err(error) if error.kind() == io::ErrorKind::InvalidData => {
                let _ = wire::write_response(
                    &mut writer,
                    &Response::Error {
                        message: error.to_string(),
                    },
                );
                let _ = stream.shutdown(Shutdown::Both);
                return Err(error);
            }
            Err(error) => return Err(error),
        };
        let response = {
            let mut router = router.lock().expect("cluster router lock");
            answer(&mut router, clients, request)
        };
        wire::write_response(&mut writer, &response)?;
    }
}

/// Maps one decoded request onto the router. Every error becomes a
/// [`Response::Error`] — the connection survives bad requests and dead
/// shards alike.
fn answer(router: &mut ClusterRouter, clients: ClientConfig, request: Request) -> Response {
    fn fail(error: &HdcError) -> Response {
        Response::Error {
            message: error.to_string(),
        }
    }
    match request {
        Request::Predict { key, hv } => match router.predict(&key, &hv) {
            Ok(prediction) => Response::Label {
                label: prediction.label as u32,
                generation: prediction.generation,
            },
            Err(error) => fail(&error),
        },
        Request::PredictBatch { pairs } => match router.predict_batch(&pairs) {
            Ok(predictions) => Response::Labels {
                predictions: predictions
                    .into_iter()
                    .map(|p| (p.label as u32, p.generation))
                    .collect(),
            },
            Err(error) => fail(&error),
        },
        Request::PredictValue { key, hv } => match router.predict_value(&key, &hv) {
            Ok(prediction) => Response::Value {
                value: prediction.value,
                generation: prediction.generation,
            },
            Err(error) => fail(&error),
        },
        Request::PredictValueBatch { pairs } => match router.predict_value_batch(&pairs) {
            Ok(predictions) => Response::Values {
                predictions: predictions
                    .into_iter()
                    .map(|p| (p.value, p.generation))
                    .collect(),
            },
            Err(error) => fail(&error),
        },
        Request::Insert { key, hv } => match router.insert(&key, &hv) {
            Ok(replaced) => Response::Inserted { replaced },
            Err(error) => fail(&error),
        },
        Request::Remove { key } => match router.remove(&key) {
            Ok(removed) => Response::Removed { removed },
            Err(error) => fail(&error),
        },
        Request::Fit { label, hv } => match router.fit_encoded(&hv, label as usize) {
            Ok(()) => Response::FitAck,
            Err(error) => fail(&error),
        },
        Request::FitValue { value, hv } => match router.fit_value_encoded(&hv, value) {
            Ok(()) => Response::FitAck,
            Err(error) => fail(&error),
        },
        Request::Refresh => match router.refresh() {
            Ok(generation) => Response::Refreshed { generation },
            Err(error) => fail(&error),
        },
        Request::Stats => match router.cluster_stats() {
            Ok(stats) => Response::Stats(stats),
            Err(error) => fail(&error),
        },
        Request::Ping => match router.ping() {
            Ok((generation, uptime_us)) => Response::Pong {
                generation,
                uptime_us,
            },
            Err(error) => fail(&error),
        },
        Request::ShardJoin { addr } => {
            match RemoteShard::connect_with(&addr, clients)
                .and_then(|shard| router.join(Box::new(shard)))
            {
                Ok((id, moved)) => Response::ShardJoined {
                    id: id as u32,
                    moved,
                },
                Err(error) => fail(&error),
            }
        }
        Request::ShardLeave { id } => match router.leave(id as usize) {
            Ok((removed, drained)) => Response::ShardLeft { removed, drained },
            Err(error) => fail(&error),
        },
        Request::AddShard | Request::RemoveShard { .. } => Response::Error {
            message: "cluster membership changes via shard_join/shard_leave, \
                      not add_shard/remove_shard"
                .into(),
        },
        Request::Snapshot | Request::Restore { .. } => Response::Error {
            message: "snapshot streaming is served by shard runtimes, not the router".into(),
        },
    }
}
