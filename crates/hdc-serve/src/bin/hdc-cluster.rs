//! `hdc-cluster` — run one process of a multi-process shard cluster.
//!
//! Two roles:
//!
//! ```text
//! hdc-cluster shard  --listen ADDR --snapshot PATH [--name NAME]
//!                    [--data-dir DIR] [--segment-bytes N] [--snapshot-every N]
//!                    [--fsync always|batch|never] [--page-cache N]
//!                    [--group-commit-us N] [--group-commit-max N]
//!                    [--wal-codec raw|adaptive]
//! hdc-cluster router --listen ADDR --shard ADDR [--shard ADDR ...] [--seed N]
//! ```
//!
//! A **shard** process loads a [`Snapshot`] file (spec + trainer state +
//! item memories — see `Model::save`), spawns the serving [`Runtime`] it
//! describes and answers the framed wire protocol on `--listen`. A
//! **router** process connects to the listed shard processes, builds the
//! consistent-hash [`ClusterRouter`] over them (`--seed` must match the
//! value used by any in-process `ShardedModel` you want routing parity
//! with; defaults to 0) and serves the same wire protocol — plus the
//! `shard_join` / `shard_leave` membership opcodes, so fresh shard
//! processes can join warm while the cluster serves.
//!
//! # Durability
//!
//! `--data-dir DIR` turns on the shard's write-ahead log and periodic
//! background snapshotting under `DIR`: every acknowledged fit, insert and
//! remove survives a crash, and the restarted shard recovers
//! bit-identically from its own log — `--snapshot` then only seeds the
//! model spec on the *first* boot; afterwards the store's recovery wins.
//! `--segment-bytes` and `--snapshot-every` tune log rotation and snapshot
//! cadence, `--fsync` picks the flush policy (`batch` by default: one
//! `fsync` per micro-batch, before its acks), and `--page-cache N` moves
//! the item memory to the paged file-backed store with at most `N`
//! hypervectors resident. Warm joins still stream the full item set: a
//! live snapshot reads the paged store around its cache.
//!
//! `--group-commit-us N` sets the group-commit collection window in
//! microseconds (default 200; `0` disables the flusher thread and flushes
//! inline per micro-batch — the classic schedule), `--group-commit-max N`
//! caps how many commit tickets one flush may coalesce (default 256), and
//! `--wal-codec raw|adaptive` picks the log record codec (`adaptive` by
//! default: per record, the smallest of sparse/delta/run-length against a
//! rolling dictionary, falling back to raw — never more than one byte
//! larger than raw).
//!
//! Typical bring-up, one trained snapshot shared by every shard:
//!
//! ```text
//! hdc-cluster shard  --listen 127.0.0.1:7101 --snapshot model.hdcs --name s0 &
//! hdc-cluster shard  --listen 127.0.0.1:7102 --snapshot model.hdcs --name s1 &
//! hdc-cluster router --listen 127.0.0.1:7100 \
//!     --shard 127.0.0.1:7101 --shard 127.0.0.1:7102 &
//! ```

use std::process::ExitCode;
use std::thread;
use std::time::Duration;

use hdc_encode::Radians;
use hdc_serve::{
    ClientConfig, ClusterRouter, ClusterServer, DurabilityConfig, EncSpec, HdcError, Pipeline,
    RemoteShard, RingConfig, Runtime, RuntimeConfig, Server, ShardBackend, Snapshot, SpecInput,
    SyncPolicy, WalCodec,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         hdc-cluster shard  --listen ADDR --snapshot PATH [--name NAME]\n    \
         [--data-dir DIR] [--segment-bytes N] [--snapshot-every N]\n    \
         [--fsync always|batch|never] [--page-cache N]\n    \
         [--group-commit-us N] [--group-commit-max N] [--wal-codec raw|adaptive]\n  \
         hdc-cluster router --listen ADDR --shard ADDR [--shard ADDR ...] [--seed N]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((role, rest)) = args.split_first() else {
        return usage();
    };
    let result = match role.as_str() {
        "shard" => run_shard_command(rest),
        "router" => run_router_command(rest),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(ParseError::Usage) => usage(),
        Err(ParseError::Runtime(message)) => {
            eprintln!("hdc-cluster: {message}");
            ExitCode::FAILURE
        }
    }
}

enum ParseError {
    Usage,
    Runtime(String),
}

impl From<HdcError> for ParseError {
    fn from(error: HdcError) -> Self {
        ParseError::Runtime(error.to_string())
    }
}

impl From<std::io::Error> for ParseError {
    fn from(error: std::io::Error) -> Self {
        ParseError::Runtime(error.to_string())
    }
}

/// Pulls `--flag value` pairs out of `rest`; repeated flags accumulate.
fn flag_values<'a>(rest: &'a [String], flag: &str) -> Result<Vec<&'a str>, ParseError> {
    let mut values = Vec::new();
    let mut arguments = rest.iter();
    while let Some(argument) = arguments.next() {
        if argument == flag {
            match arguments.next() {
                Some(value) => values.push(value.as_str()),
                None => return Err(ParseError::Usage),
            }
        }
    }
    Ok(values)
}

fn one_flag<'a>(rest: &'a [String], flag: &str) -> Result<&'a str, ParseError> {
    let values = flag_values(rest, flag)?;
    match values.as_slice() {
        [value] => Ok(value),
        _ => Err(ParseError::Usage),
    }
}

/// Parses an optional `--flag N` integer, erroring loudly on garbage.
fn numeric_flag(rest: &[String], flag: &str) -> Result<Option<u64>, ParseError> {
    match flag_values(rest, flag)?.as_slice() {
        [] => Ok(None),
        [value] => value
            .parse::<u64>()
            .map(Some)
            .map_err(|_| ParseError::Runtime(format!("invalid {flag} {value:?}"))),
        _ => Err(ParseError::Usage),
    }
}

/// Builds the shard's [`DurabilityConfig`] from the command line; `None`
/// without `--data-dir` (the tuning flags then must not appear).
fn durability_flags(rest: &[String]) -> Result<Option<DurabilityConfig>, ParseError> {
    let dir = match flag_values(rest, "--data-dir")?.as_slice() {
        [] => {
            for flag in [
                "--segment-bytes",
                "--snapshot-every",
                "--fsync",
                "--page-cache",
                "--group-commit-us",
                "--group-commit-max",
                "--wal-codec",
            ] {
                if !flag_values(rest, flag)?.is_empty() {
                    return Err(ParseError::Runtime(format!("{flag} requires --data-dir")));
                }
            }
            return Ok(None);
        }
        [dir] => *dir,
        _ => return Err(ParseError::Usage),
    };
    let mut config = DurabilityConfig::new(dir);
    if let Some(bytes) = numeric_flag(rest, "--segment-bytes")? {
        config.segment_bytes = bytes;
    }
    if let Some(every) = numeric_flag(rest, "--snapshot-every")? {
        config.snapshot_every = every;
    }
    if let Some(budget) = numeric_flag(rest, "--page-cache")? {
        config.page_cache = Some(budget as usize);
    }
    if let Some(micros) = numeric_flag(rest, "--group-commit-us")? {
        config.group_commit_window = Duration::from_micros(micros);
    }
    if let Some(cap) = numeric_flag(rest, "--group-commit-max")? {
        config.group_commit_max = cap as usize;
    }
    config.sync = match flag_values(rest, "--fsync")?.as_slice() {
        [] | ["batch"] => SyncPolicy::EveryBatch,
        ["always"] => SyncPolicy::Always,
        ["never"] => SyncPolicy::Never,
        [value] => {
            return Err(ParseError::Runtime(format!(
                "invalid --fsync {value:?}; expected always, batch or never"
            )))
        }
        _ => return Err(ParseError::Usage),
    };
    config.codec = match flag_values(rest, "--wal-codec")?.as_slice() {
        [] | ["adaptive"] => WalCodec::Adaptive,
        ["raw"] => WalCodec::Raw,
        [value] => {
            return Err(ParseError::Runtime(format!(
                "invalid --wal-codec {value:?}; expected raw or adaptive"
            )))
        }
        _ => return Err(ParseError::Usage),
    };
    Ok(Some(config))
}

fn run_shard_command(rest: &[String]) -> Result<(), ParseError> {
    let listen = one_flag(rest, "--listen")?;
    let path = one_flag(rest, "--snapshot")?;
    let name = flag_values(rest, "--name")?.first().copied().unwrap_or("");
    let durability = durability_flags(rest)?;
    let snapshot = Snapshot::read(path)?;
    // The snapshot's spec names the encoder input type; dispatch to the
    // matching monomorphization of the runtime.
    match snapshot.spec().encoder {
        EncSpec::Scalar { .. } => serve_shard::<f64>(&snapshot, listen, name, durability),
        EncSpec::Angle => serve_shard::<Radians>(&snapshot, listen, name, durability),
        EncSpec::Categorical { .. } => serve_shard::<usize>(&snapshot, listen, name, durability),
        EncSpec::Sequence { .. } => serve_shard::<[usize]>(&snapshot, listen, name, durability),
        EncSpec::Record { .. } => serve_shard::<[f64]>(&snapshot, listen, name, durability),
    }
}

fn serve_shard<X>(
    snapshot: &Snapshot,
    listen: &str,
    name: &str,
    durability: Option<DurabilityConfig>,
) -> Result<(), ParseError>
where
    X: ?Sized + SpecInput + ToOwned + Sync + 'static,
    X::Owned: Send + 'static,
{
    let model = Pipeline::from_snapshot::<X>(snapshot)?;
    let config = RuntimeConfig {
        name: name.to_owned(),
        durability,
        ..RuntimeConfig::default()
    };
    let runtime = Runtime::spawn(model, config)?;
    let server = Server::spawn(listen, runtime.handle())?;
    println!(
        "hdc-cluster shard {name:?} serving dim={} keys={} on {}",
        snapshot.spec().dim,
        snapshot.items().len(),
        server.local_addr()
    );
    park_forever();
}

fn run_router_command(rest: &[String]) -> Result<(), ParseError> {
    let listen = one_flag(rest, "--listen")?;
    let shard_addrs = flag_values(rest, "--shard")?;
    if shard_addrs.is_empty() {
        return Err(ParseError::Usage);
    }
    let seed = match flag_values(rest, "--seed")?.as_slice() {
        [] => 0,
        [value] => value
            .parse::<u64>()
            .map_err(|_| ParseError::Runtime(format!("invalid --seed {value:?}")))?,
        _ => return Err(ParseError::Usage),
    };
    let clients = ClientConfig::default();
    let mut backends: Vec<Box<dyn ShardBackend>> = Vec::with_capacity(shard_addrs.len());
    for addr in &shard_addrs {
        backends.push(Box::new(RemoteShard::connect_with(addr, clients)?));
    }
    let router = ClusterRouter::new(backends, RingConfig::default(), seed)?;
    let server = ClusterServer::spawn(listen, router, clients)?;
    println!(
        "hdc-cluster router over {} shard(s) on {}",
        shard_addrs.len(),
        server.local_addr()
    );
    park_forever();
}

fn park_forever() -> ! {
    loop {
        thread::park();
    }
}
