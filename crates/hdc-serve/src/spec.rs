//! The serializable pipeline spec: a pipeline as a **value**.
//!
//! [`PipelineSpec`] is the plain-data description of a whole HDC pipeline —
//! dimensionality, seed, [`Basis`] family, [`EncSpec`] encoder and
//! [`Task`] — that can be constructed, inspected, compared, hashed
//! ([`hash64`](PipelineSpec::hash64)), written to disk
//! ([`to_bytes`](PipelineSpec::to_bytes)) and rebuilt into a live
//! [`Model`](crate::Model) ([`build`](PipelineSpec::build)). The fluent
//! [`Pipeline::builder`](crate::Pipeline::builder) is a thin typed layer
//! that produces exactly this value; snapshots embed it so a warm restart
//! reconstructs encoders bit-identically from `(spec, seed)` alone.
//!
//! Because every constructor in the workspace is deterministic per seed,
//! the spec *is* the pipeline: two builds of the same spec produce
//! bit-identical encoders, label tables and (untrained) heads.

use std::hash::Hasher;

use hdc_basis::BasisKind;
use hdc_core::HdcError;
use hdc_encode::{
    AngleEncoder, CategoricalEncoder, FeatureRecordEncoder, FieldSpec, Radians, ScalarEncoder,
    SequenceEncoder,
};
use rand::rngs::StdRng;

use crate::codec::{self, Cursor};
use crate::pipeline::DynEncoder;

/// The basis-hypervector family a pipeline quantizes through, with its size
/// `m` and (where applicable) the §5.2 randomness hyperparameter `r`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Basis {
    /// Uncorrelated random-hypervectors (paper §3.1).
    Random {
        /// Number of basis hypervectors.
        m: usize,
    },
    /// Interpolation-based level-hypervectors (paper §4.3).
    Level {
        /// Number of levels.
        m: usize,
        /// Randomness `r ∈ [0, 1]`; `0.0` is Algorithm 1.
        r: f64,
    },
    /// Circular-hypervectors (paper §5.1) — the wrap-correct choice for
    /// angles, hours, seasons and ring positions.
    Circular {
        /// Number of sectors.
        m: usize,
        /// Randomness `r ∈ [0, 1]`.
        r: f64,
    },
}

impl Basis {
    /// The [`BasisKind`] selector this maps onto.
    #[must_use]
    pub fn kind(self) -> BasisKind {
        match self {
            Basis::Random { .. } => BasisKind::Random,
            Basis::Level { r, .. } => BasisKind::Level { randomness: r },
            Basis::Circular { r, .. } => BasisKind::Circular { randomness: r },
        }
    }

    /// The basis size `m`.
    #[must_use]
    pub fn m(self) -> usize {
        match self {
            Basis::Random { m } | Basis::Level { m, .. } | Basis::Circular { m, .. } => m,
        }
    }
}

/// The task family a pipeline learns: multi-class classification (the
/// paper's Table 1 EMG workload) or regression over a real-valued label
/// (the paper's Table 2 Beijing workload). Plain data, carried inside
/// [`PipelineSpec`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Task {
    /// Nearest-class-vector classification over `classes` labels.
    Classification {
        /// Number of classes.
        classes: usize,
    },
    /// Associative regression: labels are quantized into `levels` grid
    /// points over `[low, high]` by an invertible level encoder and read
    /// back with the integer (mean-vector) readout.
    Regression {
        /// Lower bound of the label range.
        low: f64,
        /// Upper bound of the label range.
        high: f64,
        /// Number of label quantization levels (`>= 2`).
        levels: usize,
    },
}

impl Task {
    /// The family name, for diagnostics ([`HdcError::TaskMismatch`]).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Task::Classification { .. } => "classification",
            Task::Regression { .. } => "regression",
        }
    }

    /// `true` for [`Task::Classification`].
    #[must_use]
    pub fn is_classification(self) -> bool {
        matches!(self, Task::Classification { .. })
    }

    /// `true` for [`Task::Regression`].
    #[must_use]
    pub fn is_regression(self) -> bool {
        matches!(self, Task::Regression { .. })
    }
}

/// The encoder half of a [`PipelineSpec`], as plain data — one variant per
/// workload encoder of `hdc-encode`. The typed [`Enc`](crate::Enc)
/// constructors produce these; [`SpecInput::build_encoder`] turns them back
/// into live encoders.
#[derive(Debug, Clone, PartialEq)]
pub enum EncSpec {
    /// A scalar pipeline over `[low, high]` (input type `f64`).
    Scalar {
        /// Lower bound of the encoded interval.
        low: f64,
        /// Upper bound of the encoded interval.
        high: f64,
    },
    /// An angle pipeline over `[0, 2π)` (input type [`Radians`]).
    Angle,
    /// A categorical pipeline over `n` symbols (input type `usize`).
    Categorical {
        /// Number of symbols.
        n: usize,
    },
    /// A sequence pipeline over an alphabet of `n` symbols (input type
    /// `[usize]`).
    Sequence {
        /// Alphabet size.
        n: usize,
    },
    /// A record pipeline over raw `f64` feature rows (input type `[f64]`).
    Record {
        /// One [`FieldSpec`] per feature position.
        fields: Vec<FieldSpec>,
    },
}

impl EncSpec {
    /// The variant name, for diagnostics ([`HdcError::SpecMismatch`]).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EncSpec::Scalar { .. } => "Scalar",
            EncSpec::Angle => "Angle",
            EncSpec::Categorical { .. } => "Categorical",
            EncSpec::Sequence { .. } => "Sequence",
            EncSpec::Record { .. } => "Record",
        }
    }

    /// The basis family used when a spec never chose one explicitly: each
    /// encoder picks the family that is correct for its input structure —
    /// level for linear scalars (so the interval's ends never wrap),
    /// circular otherwise — so a defaulted pipeline never quantizes a
    /// linear range through a wrapping basis or vice versa.
    #[must_use]
    pub fn default_basis(&self) -> Basis {
        match self {
            EncSpec::Scalar { .. } => Basis::Level { m: 16, r: 0.0 },
            _ => Basis::Circular { m: 16, r: 0.0 },
        }
    }
}

/// An input type a pipeline spec can be built for: the bridge between the
/// runtime-data [`EncSpec`] and the compile-time input type `X` of a
/// [`Model<X>`](crate::Model). Implemented for exactly the five workload
/// input types (`f64`, [`Radians`], `usize`, `[usize]`, `[f64]`); building
/// a spec whose encoder variant does not match the requested input type
/// fails with [`HdcError::SpecMismatch`] instead of producing a model that
/// would encode garbage.
pub trait SpecInput: Sync {
    /// The [`EncSpec`] variant name this input type requires (diagnostics).
    const ENC_NAME: &'static str;

    /// Builds the live encoder for `spec` behind the type-erased
    /// [`DynEncoder`] seam.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::SpecMismatch`] if `spec` is not this input
    /// type's variant, and propagates invalid encoder/basis parameters.
    fn build_encoder(
        spec: &EncSpec,
        dim: usize,
        basis: Basis,
        rng: &mut StdRng,
    ) -> Result<Box<dyn DynEncoder<Self>>, HdcError>;
}

fn mismatch<T>(expected: &'static str, found: &EncSpec) -> Result<T, HdcError> {
    Err(HdcError::SpecMismatch {
        expected,
        found: found.name(),
    })
}

impl SpecInput for f64 {
    const ENC_NAME: &'static str = "Scalar";

    fn build_encoder(
        spec: &EncSpec,
        dim: usize,
        basis: Basis,
        rng: &mut StdRng,
    ) -> Result<Box<dyn DynEncoder<f64>>, HdcError> {
        match *spec {
            EncSpec::Scalar { low, high } => Ok(Box::new(ScalarEncoder::with_kind(
                low,
                high,
                basis.m(),
                dim,
                basis.kind(),
                rng,
            )?)),
            ref other => mismatch(Self::ENC_NAME, other),
        }
    }
}

impl SpecInput for Radians {
    const ENC_NAME: &'static str = "Angle";

    fn build_encoder(
        spec: &EncSpec,
        dim: usize,
        basis: Basis,
        rng: &mut StdRng,
    ) -> Result<Box<dyn DynEncoder<Radians>>, HdcError> {
        match spec {
            EncSpec::Angle => {
                let set = basis.kind().build(basis.m(), dim, rng)?;
                Ok(Box::new(AngleEncoder::from_basis(set.as_ref())?))
            }
            other => mismatch(Self::ENC_NAME, other),
        }
    }
}

impl SpecInput for usize {
    const ENC_NAME: &'static str = "Categorical";

    fn build_encoder(
        spec: &EncSpec,
        dim: usize,
        _basis: Basis,
        rng: &mut StdRng,
    ) -> Result<Box<dyn DynEncoder<usize>>, HdcError> {
        match *spec {
            EncSpec::Categorical { n } => Ok(Box::new(CategoricalEncoder::new(n, dim, rng)?)),
            ref other => mismatch(Self::ENC_NAME, other),
        }
    }
}

impl SpecInput for [usize] {
    const ENC_NAME: &'static str = "Sequence";

    fn build_encoder(
        spec: &EncSpec,
        dim: usize,
        _basis: Basis,
        rng: &mut StdRng,
    ) -> Result<Box<dyn DynEncoder<[usize]>>, HdcError> {
        match *spec {
            EncSpec::Sequence { n } => Ok(Box::new(SequenceEncoder::new(n, dim, rng)?)),
            ref other => mismatch(Self::ENC_NAME, other),
        }
    }
}

impl SpecInput for [f64] {
    const ENC_NAME: &'static str = "Record";

    fn build_encoder(
        spec: &EncSpec,
        dim: usize,
        basis: Basis,
        rng: &mut StdRng,
    ) -> Result<Box<dyn DynEncoder<[f64]>>, HdcError> {
        match spec {
            EncSpec::Record { fields } => Ok(Box::new(FeatureRecordEncoder::new(
                fields,
                basis.m(),
                dim,
                basis.kind(),
                rng,
            )?)),
            other => mismatch(Self::ENC_NAME, other),
        }
    }
}

/// Version tag of the canonical spec encoding (bumped on layout changes;
/// [`PipelineSpec::from_bytes`] rejects unknown versions).
pub const SPEC_VERSION: u16 = 1;

/// A complete pipeline as plain data: everything needed to rebuild a
/// bit-identical (untrained) [`Model`](crate::Model) — and therefore the
/// header every [`Snapshot`](crate::Snapshot) carries.
///
/// ```
/// use hdc_serve::{Basis, EncSpec, PipelineSpec, Radians, Task};
///
/// let spec = PipelineSpec {
///     dim: 2_048,
///     seed: 7,
///     basis: Basis::Circular { m: 24, r: 0.0 },
///     encoder: EncSpec::Angle,
///     task: Task::Classification { classes: 2 },
/// };
/// // The spec is a value: hash it, persist it, rebuild from it.
/// let bytes = spec.to_bytes();
/// assert_eq!(PipelineSpec::from_bytes(&bytes)?, spec);
/// assert_eq!(spec.hash64(), PipelineSpec::from_bytes(&bytes)?.hash64());
/// let model = spec.clone().build::<Radians>()?;
/// assert_eq!(model.dim(), 2_048);
/// # Ok::<(), hdc_serve::HdcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PipelineSpec {
    /// Hypervector dimensionality `d`.
    pub dim: usize,
    /// Seed of the pipeline's deterministic RNG (basis draws, label table).
    pub seed: u64,
    /// The basis family value encoders quantize through.
    pub basis: Basis,
    /// The encoder specification (fixes the model's input type).
    pub encoder: EncSpec,
    /// The task family (fixes the model's prediction type).
    pub task: Task,
}

impl PipelineSpec {
    /// A spec with the conventional defaults for `encoder`: seed `0`, the
    /// encoder's [`default_basis`](EncSpec::default_basis), and two-class
    /// classification. Adjust fields directly — they are public data.
    #[must_use]
    pub fn new(dim: usize, encoder: EncSpec) -> Self {
        let basis = encoder.default_basis();
        Self {
            dim,
            seed: 0,
            basis,
            encoder,
            task: Task::Classification { classes: 2 },
        }
    }

    /// Builds the live [`Model`](crate::Model) this spec describes, for
    /// input type `X`. Equivalent to
    /// [`Pipeline::from_spec`](crate::Pipeline::from_spec).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::SpecMismatch`] if `X` is not the input type of
    /// [`encoder`](Self::encoder), and [`HdcError`] for invalid dimension,
    /// basis, encoder or task parameters.
    pub fn build<X: ?Sized + SpecInput>(self) -> Result<crate::Model<X>, HdcError> {
        crate::Pipeline::from_spec(self)
    }

    /// The canonical binary encoding: versioned, big-endian, unique per
    /// spec value — the byte string [`hash64`](Self::hash64) digests and
    /// snapshots embed.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        codec::put_u16(&mut buf, SPEC_VERSION);
        codec::put_u64(&mut buf, self.dim as u64);
        codec::put_u64(&mut buf, self.seed);
        match self.basis {
            Basis::Random { m } => {
                buf.push(0);
                codec::put_u64(&mut buf, m as u64);
            }
            Basis::Level { m, r } => {
                buf.push(1);
                codec::put_u64(&mut buf, m as u64);
                codec::put_f64(&mut buf, r);
            }
            Basis::Circular { m, r } => {
                buf.push(2);
                codec::put_u64(&mut buf, m as u64);
                codec::put_f64(&mut buf, r);
            }
        }
        match &self.encoder {
            EncSpec::Scalar { low, high } => {
                buf.push(0);
                codec::put_f64(&mut buf, *low);
                codec::put_f64(&mut buf, *high);
            }
            EncSpec::Angle => buf.push(1),
            EncSpec::Categorical { n } => {
                buf.push(2);
                codec::put_u64(&mut buf, *n as u64);
            }
            EncSpec::Sequence { n } => {
                buf.push(3);
                codec::put_u64(&mut buf, *n as u64);
            }
            EncSpec::Record { fields } => {
                buf.push(4);
                codec::put_u32(&mut buf, fields.len() as u32);
                for field in fields {
                    match *field {
                        FieldSpec::Scalar { low, high } => {
                            buf.push(0);
                            codec::put_f64(&mut buf, low);
                            codec::put_f64(&mut buf, high);
                        }
                        FieldSpec::Angle => buf.push(1),
                        FieldSpec::Categorical { n } => {
                            buf.push(2);
                            codec::put_u64(&mut buf, n as u64);
                        }
                    }
                }
            }
        }
        match self.task {
            Task::Classification { classes } => {
                buf.push(0);
                codec::put_u64(&mut buf, classes as u64);
            }
            Task::Regression { low, high, levels } => {
                buf.push(1);
                codec::put_f64(&mut buf, low);
                codec::put_f64(&mut buf, high);
                codec::put_u64(&mut buf, levels as u64);
            }
        }
        buf
    }

    /// Decodes a canonical spec encoding.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Snapshot`] for truncated input, an unknown
    /// version, an unknown tag, trailing bytes, or counts that exceed this
    /// platform's address space.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, HdcError> {
        let mut cursor = Cursor::new(bytes);
        let spec = Self::read_from(&mut cursor)?;
        cursor
            .finish()
            .map_err(|e| HdcError::Snapshot(e.to_string()))?;
        Ok(spec)
    }

    /// Reads one spec from a cursor positioned at its first byte (used by
    /// the snapshot format, which appends trainer state after the spec).
    pub(crate) fn read_from(cursor: &mut Cursor<'_>) -> Result<Self, HdcError> {
        fn snap(e: std::io::Error) -> HdcError {
            HdcError::Snapshot(e.to_string())
        }
        fn index(value: u64, what: &str) -> Result<usize, HdcError> {
            usize::try_from(value)
                .map_err(|_| HdcError::Snapshot(format!("{what} {value} exceeds usize")))
        }
        let version = cursor.u16().map_err(snap)?;
        if version != SPEC_VERSION {
            return Err(HdcError::Snapshot(format!(
                "unsupported spec version {version}"
            )));
        }
        let dim = index(cursor.u64().map_err(snap)?, "dim")?;
        let seed = cursor.u64().map_err(snap)?;
        let basis = match cursor.take(1).map_err(snap)?[0] {
            0 => Basis::Random {
                m: index(cursor.u64().map_err(snap)?, "basis size")?,
            },
            1 => Basis::Level {
                m: index(cursor.u64().map_err(snap)?, "basis size")?,
                r: cursor.f64().map_err(snap)?,
            },
            2 => Basis::Circular {
                m: index(cursor.u64().map_err(snap)?, "basis size")?,
                r: cursor.f64().map_err(snap)?,
            },
            tag => return Err(HdcError::Snapshot(format!("unknown basis tag {tag}"))),
        };
        let encoder = match cursor.take(1).map_err(snap)?[0] {
            0 => EncSpec::Scalar {
                low: cursor.f64().map_err(snap)?,
                high: cursor.f64().map_err(snap)?,
            },
            1 => EncSpec::Angle,
            2 => EncSpec::Categorical {
                n: index(cursor.u64().map_err(snap)?, "symbol count")?,
            },
            3 => EncSpec::Sequence {
                n: index(cursor.u64().map_err(snap)?, "alphabet size")?,
            },
            4 => {
                let count = cursor.u32().map_err(snap)? as usize;
                let mut fields = Vec::with_capacity(count.min(1 << 16));
                for _ in 0..count {
                    fields.push(match cursor.take(1).map_err(snap)?[0] {
                        0 => FieldSpec::Scalar {
                            low: cursor.f64().map_err(snap)?,
                            high: cursor.f64().map_err(snap)?,
                        },
                        1 => FieldSpec::Angle,
                        2 => FieldSpec::Categorical {
                            n: index(cursor.u64().map_err(snap)?, "category count")?,
                        },
                        tag => return Err(HdcError::Snapshot(format!("unknown field tag {tag}"))),
                    });
                }
                EncSpec::Record { fields }
            }
            tag => return Err(HdcError::Snapshot(format!("unknown encoder tag {tag}"))),
        };
        let task = match cursor.take(1).map_err(snap)?[0] {
            0 => Task::Classification {
                classes: index(cursor.u64().map_err(snap)?, "class count")?,
            },
            1 => Task::Regression {
                low: cursor.f64().map_err(snap)?,
                high: cursor.f64().map_err(snap)?,
                levels: index(cursor.u64().map_err(snap)?, "level count")?,
            },
            tag => return Err(HdcError::Snapshot(format!("unknown task tag {tag}"))),
        };
        Ok(Self {
            dim,
            seed,
            basis,
            encoder,
            task,
        })
    }

    /// A stable 64-bit digest of the canonical encoding (FNV-1a): cheap
    /// identity for caching, shard-compatibility checks and snapshot
    /// headers. Equal specs always hash equal; the digest is stable across
    /// processes and platforms (it hashes [`to_bytes`](Self::to_bytes),
    /// not in-memory layout).
    #[must_use]
    pub fn hash64(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        for byte in self.to_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        hash
    }
}

/// `Hasher`-compatibility: a spec can key standard hash maps through its
/// Spec identity **is** the canonical encoding: `PartialEq`/`Eq`/`Hash`
/// all compare [`to_bytes`](PipelineSpec::to_bytes), so the three agree
/// with each other and with [`hash64`](PipelineSpec::hash64) even though
/// the struct contains `f64` fields. Under bit-level identity `-0.0` and
/// `0.0` are *different* specs (they build different encoders' metadata)
/// and a NaN bound equals itself — which is what lets a spec key standard
/// hash maps.
impl PartialEq for PipelineSpec {
    fn eq(&self, other: &Self) -> bool {
        self.to_bytes() == other.to_bytes()
    }
}

impl Eq for PipelineSpec {}

/// See the [`PartialEq`] impl: hashes the canonical encoding, consistent
/// with equality.
impl std::hash::Hash for PipelineSpec {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write(&self.to_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_specs() -> Vec<PipelineSpec> {
        vec![
            PipelineSpec::new(256, EncSpec::Angle),
            PipelineSpec {
                dim: 10_000,
                seed: 42,
                basis: Basis::Circular { m: 24, r: 0.25 },
                encoder: EncSpec::Record {
                    fields: vec![
                        FieldSpec::scalar(0.0, 1.0),
                        FieldSpec::angle(),
                        FieldSpec::categorical(7),
                    ],
                },
                task: Task::Regression {
                    low: -1.0,
                    high: 1.0,
                    levels: 32,
                },
            },
            PipelineSpec {
                dim: 65,
                seed: 3,
                basis: Basis::Random { m: 8 },
                encoder: EncSpec::Sequence { n: 5 },
                task: Task::Classification { classes: 4 },
            },
            PipelineSpec {
                dim: 512,
                seed: 9,
                basis: Basis::Level { m: 16, r: 1.0 },
                encoder: EncSpec::Scalar {
                    low: -40.0,
                    high: 60.0,
                },
                task: Task::Classification { classes: 2 },
            },
            PipelineSpec {
                dim: 128,
                seed: 1,
                basis: Basis::Circular { m: 12, r: 0.0 },
                encoder: EncSpec::Categorical { n: 11 },
                task: Task::Regression {
                    low: 0.0,
                    high: 100.0,
                    levels: 21,
                },
            },
        ]
    }

    #[test]
    fn every_spec_round_trips_through_bytes() {
        for spec in sample_specs() {
            let bytes = spec.to_bytes();
            let decoded = PipelineSpec::from_bytes(&bytes).unwrap();
            assert_eq!(decoded, spec);
            assert_eq!(decoded.hash64(), spec.hash64());
        }
    }

    #[test]
    fn distinct_specs_have_distinct_encodings_and_hashes() {
        let specs = sample_specs();
        for (i, a) in specs.iter().enumerate() {
            for b in &specs[i + 1..] {
                assert_ne!(a.to_bytes(), b.to_bytes());
                assert_ne!(a.hash64(), b.hash64());
            }
        }
        // A one-field difference changes the digest.
        let base = specs[0].clone();
        let mut tweaked = base.clone();
        tweaked.seed += 1;
        assert_ne!(base.hash64(), tweaked.hash64());
    }

    #[test]
    fn malformed_spec_bytes_are_rejected() {
        let bytes = sample_specs()[1].to_bytes();
        // Truncation anywhere fails.
        for cut in 0..bytes.len() {
            assert!(
                PipelineSpec::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must not parse"
            );
        }
        // Trailing garbage fails.
        let mut long = bytes.clone();
        long.push(0);
        assert!(PipelineSpec::from_bytes(&long).is_err());
        // Unknown version fails.
        let mut wrong = bytes.clone();
        wrong[0] = 0xFF;
        assert!(matches!(
            PipelineSpec::from_bytes(&wrong),
            Err(HdcError::Snapshot(_))
        ));
        // Unknown tags fail (basis tag sits right after version+dim+seed).
        let mut bad_tag = bytes;
        bad_tag[18] = 9;
        assert!(PipelineSpec::from_bytes(&bad_tag).is_err());
    }

    #[test]
    fn task_and_enc_names_are_stable() {
        assert_eq!(Task::Classification { classes: 3 }.name(), "classification");
        assert!(Task::Classification { classes: 3 }.is_classification());
        let regression = Task::Regression {
            low: 0.0,
            high: 1.0,
            levels: 8,
        };
        assert_eq!(regression.name(), "regression");
        assert!(regression.is_regression());
        assert_eq!(EncSpec::Angle.name(), "Angle");
        assert_eq!(EncSpec::Record { fields: vec![] }.name(), "Record");
    }

    #[test]
    fn default_basis_is_per_encoder() {
        assert_eq!(
            EncSpec::Scalar {
                low: 0.0,
                high: 1.0
            }
            .default_basis(),
            Basis::Level { m: 16, r: 0.0 }
        );
        assert_eq!(
            EncSpec::Angle.default_basis(),
            Basis::Circular { m: 16, r: 0.0 }
        );
    }

    #[test]
    fn identity_is_bitwise_so_eq_hash_and_bytes_agree() {
        use std::collections::HashMap;
        use std::hash::{DefaultHasher, Hash, Hasher};

        fn digest(spec: &PipelineSpec) -> u64 {
            let mut hasher = DefaultHasher::new();
            spec.hash(&mut hasher);
            hasher.finish()
        }
        let a = PipelineSpec {
            dim: 128,
            seed: 0,
            basis: Basis::Level { m: 8, r: 0.0 },
            encoder: EncSpec::Scalar {
                low: 0.0,
                high: 1.0,
            },
            task: Task::Classification { classes: 2 },
        };
        // -0.0 is a *different* spec under bit-level identity — equality,
        // Hash, hash64 and to_bytes all agree on that.
        let mut b = a.clone();
        b.encoder = EncSpec::Scalar {
            low: -0.0,
            high: 1.0,
        };
        assert_ne!(a, b);
        assert_ne!(digest(&a), digest(&b));
        assert_ne!(a.hash64(), b.hash64());
        // And equal specs key hash maps (Eq + consistent Hash).
        let mut cache: HashMap<PipelineSpec, &str> = HashMap::new();
        cache.insert(a.clone(), "hit");
        assert_eq!(cache.get(&a.clone()), Some(&"hit"));
        assert_eq!(cache.get(&b), None);
    }

    #[test]
    fn building_the_wrong_input_type_is_a_spec_mismatch() {
        let spec = PipelineSpec::new(256, EncSpec::Angle);
        assert!(matches!(
            spec.build::<f64>(),
            Err(HdcError::SpecMismatch {
                expected: "Scalar",
                found: "Angle"
            })
        ));
    }
}
