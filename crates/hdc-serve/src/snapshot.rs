//! Durable snapshots: the compact binary state a pipeline (or a whole
//! serving runtime) writes on shutdown and reloads on spawn, making
//! restarts **warm** — the restored model predicts bit-identically to the
//! one that was saved.
//!
//! # What is captured
//!
//! A [`Snapshot`] is three sections:
//!
//! 1. the [`PipelineSpec`] header — everything needed to rebuild encoders
//!    and label tables deterministically from `(spec, seed)`; no
//!    hypervector table is ever serialized, because the spec *is* the
//!    table (every constructor is deterministic per seed);
//! 2. the trainer accumulators — per-class counter tables for
//!    classification, the bound-pair bundle counters for regression; the
//!    finalized heads are **derived** state
//!    (`finish_deterministic`/`finish_integer`) and are recomputed on
//!    load, which is what makes the restore exact rather than approximate;
//! 3. the keyed item memories of a serving fleet (empty for a bare
//!    [`Model::save`](crate::Model::save)).
//!
//! # Format
//!
//! ```text
//! snapshot := "HDCS" magic, u16 version (=1), spec, state, items
//! spec     := the PipelineSpec canonical encoding (see hdc_serve::spec)
//! state    := 0x00 classify: u32 classes,
//!                  classes × { u64 count, i64 weight, dim × i32 }
//!           | 0x01 regress:  u64 observed, i64 weight, dim × i32
//! items    := u32 n, n × { u64-len utf8 key, u32 dim, words × u64 }
//! ```
//!
//! All integers are big-endian; truncation, trailing bytes, unknown tags
//! and cross-field inconsistencies (e.g. a counter table that does not
//! match the spec's dimensionality) all fail parsing with
//! [`HdcError::Snapshot`] — a corrupt file can never half-load.

use std::io;
use std::path::Path;

use hdc_core::{BinaryHypervector, HdcError, MajorityAccumulator};
use hdc_learn::{CentroidTrainer, RegressionTrainer};

use crate::codec::{self, Cursor};
use crate::pipeline::TaskState;
use crate::spec::{PipelineSpec, Task};

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"HDCS";

/// Version tag of the snapshot layout (bumped on changes;
/// [`Snapshot::from_bytes`] rejects unknown versions).
pub const SNAPSHOT_VERSION: u16 = 1;

fn snap_err(context: &str, error: impl std::fmt::Display) -> HdcError {
    HdcError::Snapshot(format!("{context}: {error}"))
}

/// The captured trainer state, as plain counters.
#[derive(Debug, Clone, PartialEq)]
enum StateSnapshot {
    /// Per-class sample counts and accumulator counters.
    Classify {
        counts: Vec<u64>,
        accumulators: Vec<(Vec<i32>, i64)>,
    },
    /// Observation count and bundle counters.
    Regress {
        observed: u64,
        counts: Vec<i32>,
        weight: i64,
    },
}

/// A self-contained, durable capture of a pipeline: spec header, trainer
/// accumulators and (for runtime snapshots) the keyed item memories.
///
/// Produced by [`Model::snapshot`](crate::Model::snapshot)/
/// [`Model::save`](crate::Model::save) and by a runtime configured with
/// [`RuntimeConfig::snapshot_on_shutdown`](crate::RuntimeConfig); consumed
/// by [`Pipeline::load`](crate::Pipeline)/
/// [`Pipeline::from_snapshot`](crate::Pipeline) and by
/// [`RuntimeConfig::load_snapshot`](crate::RuntimeConfig). The restore is
/// **bit-exact**: accumulators are adopted verbatim and heads re-finalized
/// deterministically, so a save → load → predict round trip answers
/// identically to the model that was saved.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    spec: PipelineSpec,
    state: StateSnapshot,
    items: Vec<(String, BinaryHypervector)>,
}

impl Snapshot {
    /// Captures a live task state (pub(crate): callers go through
    /// [`Model::snapshot`](crate::Model::snapshot) or the runtime).
    pub(crate) fn of_state(
        spec: PipelineSpec,
        state: &TaskState,
        items: Vec<(String, BinaryHypervector)>,
    ) -> Self {
        match state {
            TaskState::Classify { trainer, .. } => Self::of_classify(spec, trainer, items),
            TaskState::Regress { trainer, .. } => Self::of_regress(spec, trainer, items),
        }
    }

    /// Captures a classification trainer.
    pub(crate) fn of_classify(
        spec: PipelineSpec,
        trainer: &CentroidTrainer,
        items: Vec<(String, BinaryHypervector)>,
    ) -> Self {
        let accumulators = (0..trainer.classes())
            .map(|class| {
                let acc = trainer.accumulator(class);
                (acc.counts().to_vec(), acc.weight())
            })
            .collect();
        Self {
            spec,
            state: StateSnapshot::Classify {
                counts: trainer.counts().iter().map(|&c| c as u64).collect(),
                accumulators,
            },
            items,
        }
    }

    /// Captures a regression trainer.
    pub(crate) fn of_regress(
        spec: PipelineSpec,
        trainer: &RegressionTrainer,
        items: Vec<(String, BinaryHypervector)>,
    ) -> Self {
        Self {
            spec,
            state: StateSnapshot::Regress {
                observed: trainer.observed() as u64,
                counts: trainer.accumulator().counts().to_vec(),
                weight: trainer.accumulator().weight(),
            },
            items,
        }
    }

    /// The pipeline spec this snapshot was captured from.
    #[must_use]
    pub fn spec(&self) -> &PipelineSpec {
        &self.spec
    }

    /// Total training observations captured in the trainer state.
    #[must_use]
    pub fn observed(&self) -> u64 {
        match &self.state {
            StateSnapshot::Classify { counts, .. } => counts.iter().sum(),
            StateSnapshot::Regress { observed, .. } => *observed,
        }
    }

    /// The captured keyed item-memory entries (empty for bare model
    /// snapshots).
    #[must_use]
    pub fn items(&self) -> &[(String, BinaryHypervector)] {
        &self.items
    }

    /// Moves the captured item-memory entries out (the runtime feeds them
    /// back into its sharded fleet on spawn).
    pub(crate) fn take_items(&mut self) -> Vec<(String, BinaryHypervector)> {
        std::mem::take(&mut self.items)
    }

    /// Swaps the captured item-memory entries for `items` — the cluster
    /// router streams a donor's trainer state with a *different* item
    /// partition to a warm-joining shard.
    pub(crate) fn replace_items(&mut self, items: Vec<(String, BinaryHypervector)>) {
        self.items = items;
    }

    /// Adopts this snapshot's counters into an already built (same-spec)
    /// classification trainer.
    pub(crate) fn restore_classify_trainer(
        &self,
        trainer: &mut CentroidTrainer,
    ) -> Result<(), HdcError> {
        let StateSnapshot::Classify {
            counts,
            accumulators,
        } = &self.state
        else {
            return Err(HdcError::Snapshot(
                "snapshot task does not match the spec's task".into(),
            ));
        };
        if accumulators.len() != trainer.classes() || counts.len() != trainer.classes() {
            return Err(HdcError::Snapshot(format!(
                "snapshot holds {} classes, spec expects {}",
                accumulators.len(),
                trainer.classes()
            )));
        }
        let dim = self.spec.dim;
        let rebuilt: Vec<MajorityAccumulator> = accumulators
            .iter()
            .map(|(class_counts, weight)| {
                if class_counts.len() != dim {
                    return Err(HdcError::Snapshot(format!(
                        "class counter table of {} entries does not match dim {dim}",
                        class_counts.len()
                    )));
                }
                Ok(MajorityAccumulator::from_parts(
                    class_counts.clone(),
                    *weight,
                ))
            })
            .collect::<Result<_, _>>()?;
        let sample_counts = counts
            .iter()
            .map(|&c| {
                usize::try_from(c)
                    .map_err(|_| HdcError::Snapshot(format!("count {c} exceeds usize")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        *trainer = CentroidTrainer::from_parts(rebuilt, sample_counts)?;
        Ok(())
    }

    /// Adopts this snapshot's counters into an already built (same-spec)
    /// regression trainer.
    pub(crate) fn restore_regress_trainer(
        &self,
        trainer: &mut RegressionTrainer,
    ) -> Result<(), HdcError> {
        let StateSnapshot::Regress {
            observed,
            counts,
            weight,
        } = &self.state
        else {
            return Err(HdcError::Snapshot(
                "snapshot task does not match the spec's task".into(),
            ));
        };
        if counts.len() != self.spec.dim {
            return Err(HdcError::Snapshot(format!(
                "bundle counter table of {} entries does not match dim {}",
                counts.len(),
                self.spec.dim
            )));
        }
        let observed = usize::try_from(*observed).map_err(|_| {
            HdcError::Snapshot(format!("observation count {observed} exceeds usize"))
        })?;
        *trainer = RegressionTrainer::from_parts(
            trainer.label_encoder().clone(),
            MajorityAccumulator::from_parts(counts.clone(), *weight),
            observed,
        )?;
        Ok(())
    }

    /// Adopts this snapshot's trainer counters into an already built
    /// (same-spec) task state and re-finalizes the head.
    pub(crate) fn restore_into(&self, state: &mut TaskState) -> Result<(), HdcError> {
        match &mut *state {
            TaskState::Classify { trainer, .. } => self.restore_classify_trainer(trainer)?,
            TaskState::Regress { trainer, .. } => self.restore_regress_trainer(trainer)?,
        }
        state.refresh();
        Ok(())
    }

    /// The snapshot's canonical binary encoding.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.spec.dim * 4);
        buf.extend_from_slice(&SNAPSHOT_MAGIC);
        codec::put_u16(&mut buf, SNAPSHOT_VERSION);
        buf.extend_from_slice(&self.spec.to_bytes());
        match &self.state {
            StateSnapshot::Classify {
                counts,
                accumulators,
            } => {
                buf.push(0);
                codec::put_u32(&mut buf, accumulators.len() as u32);
                for (count, (class_counts, weight)) in counts.iter().zip(accumulators) {
                    codec::put_u64(&mut buf, *count);
                    codec::put_i64(&mut buf, *weight);
                    for &c in class_counts {
                        codec::put_i32(&mut buf, c);
                    }
                }
            }
            StateSnapshot::Regress {
                observed,
                counts,
                weight,
            } => {
                buf.push(1);
                codec::put_u64(&mut buf, *observed);
                codec::put_i64(&mut buf, *weight);
                for &c in counts {
                    codec::put_i32(&mut buf, c);
                }
            }
        }
        codec::put_u32(&mut buf, self.items.len() as u32);
        for (key, hv) in &self.items {
            // u64-prefixed keys: local inserts accept any key length (only
            // the wire protocol caps keys at u16), so the snapshot writer
            // must never be able to panic on one — shutdown snapshots are
            // documented best-effort, never a panic.
            codec::put_long_string(&mut buf, key);
            codec::put_hv(&mut buf, hv).expect(
                "item dimensionality equals the spec's, which fits u32 for any buildable model",
            );
        }
        buf
    }

    /// Decodes a snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Snapshot`] for bad magic, unknown versions,
    /// truncation, trailing bytes or internally inconsistent state.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, HdcError> {
        fn snap(e: io::Error) -> HdcError {
            HdcError::Snapshot(e.to_string())
        }
        let mut cursor = Cursor::new(bytes);
        let magic = cursor.take(4).map_err(snap)?;
        if magic != SNAPSHOT_MAGIC {
            return Err(HdcError::Snapshot("bad magic; not a snapshot file".into()));
        }
        let version = cursor.u16().map_err(snap)?;
        if version != SNAPSHOT_VERSION {
            return Err(HdcError::Snapshot(format!(
                "unsupported snapshot version {version}"
            )));
        }
        let spec = PipelineSpec::read_from(&mut cursor)?;
        let dim = spec.dim;
        let state = match cursor.take(1).map_err(snap)?[0] {
            0 => {
                let classes = cursor.u32().map_err(snap)? as usize;
                if let Task::Classification {
                    classes: spec_classes,
                } = spec.task
                {
                    if classes != spec_classes {
                        return Err(HdcError::Snapshot(format!(
                            "state holds {classes} classes, spec declares {spec_classes}"
                        )));
                    }
                } else {
                    return Err(HdcError::Snapshot(
                        "classification state under a regression spec".into(),
                    ));
                }
                // Every declared count clamps its preallocation by the
                // bytes actually present: a corrupt dim/classes header
                // fails on the first missing read instead of reserving
                // gigabytes up front.
                let mut counts = Vec::with_capacity(classes.min(cursor.remaining() / 16));
                let mut accumulators = Vec::with_capacity(classes.min(cursor.remaining() / 16));
                for _ in 0..classes {
                    counts.push(cursor.u64().map_err(snap)?);
                    let weight = cursor.i64().map_err(snap)?;
                    let mut class_counts = Vec::with_capacity(dim.min(cursor.remaining() / 4));
                    for _ in 0..dim {
                        class_counts.push(cursor.i32().map_err(snap)?);
                    }
                    accumulators.push((class_counts, weight));
                }
                StateSnapshot::Classify {
                    counts,
                    accumulators,
                }
            }
            1 => {
                if !spec.task.is_regression() {
                    return Err(HdcError::Snapshot(
                        "regression state under a classification spec".into(),
                    ));
                }
                let observed = cursor.u64().map_err(snap)?;
                let weight = cursor.i64().map_err(snap)?;
                let mut counts = Vec::with_capacity(dim.min(cursor.remaining() / 4));
                for _ in 0..dim {
                    counts.push(cursor.i32().map_err(snap)?);
                }
                StateSnapshot::Regress {
                    observed,
                    counts,
                    weight,
                }
            }
            tag => return Err(HdcError::Snapshot(format!("unknown state tag {tag}"))),
        };
        let item_count = cursor.u32().map_err(snap)? as usize;
        let mut items = Vec::with_capacity(item_count.min(1 << 16));
        for _ in 0..item_count {
            let key = cursor.long_string().map_err(snap)?;
            let hv = cursor.hv().map_err(snap)?;
            if hv.dim() != dim {
                return Err(HdcError::Snapshot(format!(
                    "item '{key}' has dim {}, spec expects {dim}",
                    hv.dim()
                )));
            }
            items.push((key, hv));
        }
        cursor.finish().map_err(snap)?;
        Ok(Self { spec, state, items })
    }

    /// Writes the snapshot to a file (atomically: a temporary sibling is
    /// written first, then renamed over `path`, so a crash mid-write never
    /// leaves a truncated snapshot behind).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Snapshot`] on I/O failure.
    pub fn write(&self, path: impl AsRef<Path>) -> Result<(), HdcError> {
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.to_bytes())
            .map_err(|e| snap_err(&format!("writing {}", tmp.display()), e))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| snap_err(&format!("renaming into {}", path.display()), e))
    }

    /// Reads a snapshot file.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Snapshot`] on I/O failure or a corrupt file.
    pub fn read(path: impl AsRef<Path>) -> Result<Self, HdcError> {
        let path = path.as_ref();
        let bytes =
            std::fs::read(path).map_err(|e| snap_err(&format!("reading {}", path.display()), e))?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Enc, Pipeline, Radians};

    fn trained_classifier() -> crate::Model<Radians> {
        let mut model = Pipeline::builder(257)
            .seed(5)
            .classes(3)
            .encoder(Enc::angle())
            .build()
            .unwrap();
        let hours: Vec<Radians> = (0..30)
            .map(|i| Radians::periodic(f64::from(i), 30.0))
            .collect();
        let labels: Vec<usize> = (0..30).map(|i| i % 3).collect();
        model.fit_batch(&hours, &labels).unwrap();
        model
    }

    #[test]
    fn classification_snapshot_round_trips_bit_identically() {
        let model = trained_classifier();
        let snapshot = model.snapshot();
        assert_eq!(snapshot.observed(), 30);
        let bytes = snapshot.to_bytes();
        let decoded = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, snapshot);
        let restored = Pipeline::from_snapshot::<Radians>(&decoded).unwrap();
        assert_eq!(restored.classifier(), model.classifier());
        assert_eq!(restored.counts(), model.counts());
        // Training resumes identically after the round trip.
        let mut a = restored;
        let mut b = trained_classifier();
        a.fit(&Radians(0.37), 1).unwrap();
        b.fit(&Radians(0.37), 1).unwrap();
        assert_eq!(a.classifier(), b.classifier());
    }

    #[test]
    fn regression_snapshot_round_trips_bit_identically() {
        let mut model = Pipeline::builder(320)
            .seed(9)
            .regression(0.0, 24.0, 24)
            .encoder(Enc::angle())
            .build()
            .unwrap();
        let hours: Vec<Radians> = (0..48)
            .map(|i| Radians::periodic(f64::from(i) / 2.0, 24.0))
            .collect();
        let values: Vec<f64> = (0..48).map(|i| f64::from(i) / 2.0).collect();
        model.fit_value_batch(&hours, &values).unwrap();

        let snapshot = model.snapshot();
        let decoded = Snapshot::from_bytes(&snapshot.to_bytes()).unwrap();
        let restored = Pipeline::from_snapshot::<Radians>(&decoded).unwrap();
        for hour in &hours {
            assert_eq!(restored.predict_value(hour), model.predict_value(hour));
        }
        assert_eq!(restored.observed(), model.observed());
    }

    #[test]
    fn save_and_load_files() {
        let model = trained_classifier();
        let path =
            std::env::temp_dir().join(format!("hdc-snapshot-test-{}.hdcs", std::process::id()));
        model.save(&path).unwrap();
        let restored = Pipeline::load::<Radians>(&path).unwrap();
        assert_eq!(restored.classifier(), model.classifier());
        // The wrong input type is refused with a spec mismatch.
        assert!(matches!(
            Pipeline::load::<f64>(&path),
            Err(HdcError::SpecMismatch { .. })
        ));
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            Pipeline::load::<Radians>(&path),
            Err(HdcError::Snapshot(_))
        ));
    }

    #[test]
    fn corrupt_snapshots_are_rejected() {
        let model = trained_classifier();
        let bytes = model.snapshot().to_bytes();
        // Truncations never parse.
        for cut in [0, 3, 5, 10, bytes.len() - 1] {
            assert!(Snapshot::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Trailing garbage never parses.
        let mut long = bytes.clone();
        long.push(7);
        assert!(Snapshot::from_bytes(&long).is_err());
        // Bad magic and bad version are named errors.
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            Snapshot::from_bytes(&bad_magic),
            Err(HdcError::Snapshot(reason)) if reason.contains("magic")
        ));
        let mut bad_version = bytes;
        bad_version[4] = 0xFF;
        assert!(matches!(
            Snapshot::from_bytes(&bad_version),
            Err(HdcError::Snapshot(reason)) if reason.contains("version")
        ));
    }

    #[test]
    fn item_keys_beyond_the_wire_cap_survive_the_round_trip() {
        use crate::spec::{Basis, EncSpec};
        use hdc_core::BinaryHypervector;

        // Local inserts accept any key length (only the wire protocol caps
        // keys at u16), so the snapshot writer must neither panic nor
        // truncate on one — shutdown snapshots are documented best-effort.
        let spec = PipelineSpec {
            dim: 257,
            seed: 1,
            basis: Basis::Circular { m: 8, r: 0.0 },
            encoder: EncSpec::Angle,
            task: Task::Classification { classes: 2 },
        };
        let trainer = CentroidTrainer::new(2, 257).unwrap();
        let long_key = "k".repeat(70_000);
        let snapshot = Snapshot::of_classify(
            spec,
            &trainer,
            vec![(long_key.clone(), BinaryHypervector::zeros(257))],
        );
        let decoded = Snapshot::from_bytes(&snapshot.to_bytes()).unwrap();
        assert_eq!(decoded.items().len(), 1);
        assert_eq!(decoded.items()[0].0, long_key);
    }

    #[test]
    fn absurd_dim_header_fails_fast_without_a_huge_allocation() {
        use crate::codec;
        use crate::spec::{Basis, EncSpec};

        // A corrupt/crafted header declaring dim = 2^40 must fail on the
        // first missing counter read — the clamped preallocations reserve
        // no more than the bytes actually present.
        let spec = PipelineSpec {
            dim: 1 << 40,
            seed: 0,
            basis: Basis::Random { m: 4 },
            encoder: EncSpec::Angle,
            task: Task::Regression {
                low: 0.0,
                high: 1.0,
                levels: 8,
            },
        };
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&SNAPSHOT_MAGIC);
        codec::put_u16(&mut bytes, SNAPSHOT_VERSION);
        bytes.extend_from_slice(&spec.to_bytes());
        bytes.push(1); // regression state tag
        codec::put_u64(&mut bytes, 0); // observed
        codec::put_i64(&mut bytes, 0); // weight
                                       // …and no counter table at all.
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(HdcError::Snapshot(_))
        ));
    }

    #[test]
    fn restore_rejects_mismatched_spec() {
        let model = trained_classifier();
        let snapshot = model.snapshot();
        let mut other = Pipeline::builder(257)
            .seed(6) // different seed → different spec
            .classes(3)
            .encoder(Enc::angle())
            .build()
            .unwrap();
        assert!(matches!(
            other.restore(&snapshot),
            Err(HdcError::Snapshot(_))
        ));
    }
}
