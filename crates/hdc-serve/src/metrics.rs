//! Serving metrics: queue depth, request/batch counters and the batch-size
//! and latency distributions of the micro-batching runtime.
//!
//! [`ServeMetrics`] is the live, shared instrument — lock-free counters for
//! the hot path plus two [`dirstats::LinearHistogram`]s behind one mutex
//! that is only taken once per *batch*, not per request. A
//! [`MetricsSnapshot`] is the plain-data copy exported through
//! [`RuntimeStats`](crate::RuntimeStats) and the wire protocol's `stats`
//! operation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use dirstats::LinearHistogram;

/// Upper bound (µs) of the latency histogram; slower requests clamp into
/// the top bin. 100 ms is far beyond any healthy micro-batch wait.
const LATENCY_RANGE_US: f64 = 100_000.0;

/// Number of latency bins (400 µs resolution over the 100 ms range).
const LATENCY_BINS: usize = 250;

/// Live counters and histograms of one serving runtime, shared between the
/// ingestion handles (enqueue side) and the dispatcher (dequeue/serve side).
#[derive(Debug)]
pub struct ServeMetrics {
    started: Instant,
    queue_depth: AtomicU64,
    requests: AtomicU64,
    batches: AtomicU64,
    inserts: AtomicU64,
    removes: AtomicU64,
    fits: AtomicU64,
    histograms: Mutex<Histograms>,
}

#[derive(Debug)]
struct Histograms {
    batch_sizes: LinearHistogram,
    latency_us: LinearHistogram,
}

impl ServeMetrics {
    /// Creates metrics for a runtime whose micro-batches hold at most
    /// `max_batch` requests (sizes the batch-size histogram: one bin per
    /// possible size, capped at 256 bins).
    #[must_use]
    pub fn new(max_batch: usize) -> Self {
        let top = max_batch.max(1) as f64;
        let bins = max_batch.clamp(1, 256);
        Self {
            started: Instant::now(),
            queue_depth: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            removes: AtomicU64::new(0),
            fits: AtomicU64::new(0),
            histograms: Mutex::new(Histograms {
                batch_sizes: LinearHistogram::new(0.0, top, bins)
                    .expect("max_batch >= 1 yields a valid range"),
                latency_us: LinearHistogram::new(0.0, LATENCY_RANGE_US, LATENCY_BINS)
                    .expect("constant range is valid"),
            }),
        }
    }

    /// Time since these metrics (i.e. their runtime) were created — the
    /// uptime reported by `stats` and the `ping` health probe, so load
    /// balancers can tell a fresh runtime from a long-lived one without
    /// issuing a prediction.
    #[must_use]
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Records `n` work items entering the ingestion queue.
    pub fn enqueued(&self, n: usize) {
        self.queue_depth.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Records `n` work items leaving the queue (picked up by the
    /// dispatcher, or abandoned by a failed send).
    pub fn dequeued(&self, n: usize) {
        self.queue_depth.fetch_sub(n as u64, Ordering::Relaxed);
    }

    /// Records one served micro-batch of `size` predictions and the
    /// per-request queue+serve latencies.
    pub fn record_batch(&self, size: usize, latencies: impl IntoIterator<Item = Duration>) {
        self.requests.fetch_add(size as u64, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        let mut histograms = self.histograms.lock().expect("metrics lock never poisons");
        histograms.batch_sizes.add(size as f64);
        for latency in latencies {
            histograms.latency_us.add(latency.as_secs_f64() * 1e6);
        }
    }

    /// Records one item-memory insert.
    pub fn record_insert(&self) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one item-memory removal.
    pub fn record_remove(&self) {
        self.removes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one training observation folded into the online trainer.
    pub fn record_fit(&self) {
        self.fits.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the current counters and distributions out as plain data.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let histograms = self.histograms.lock().expect("metrics lock never poisons");
        let requests = self.requests.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        MetricsSnapshot {
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            requests,
            batches,
            inserts: self.inserts.load(Ordering::Relaxed),
            removes: self.removes.load(Ordering::Relaxed),
            fits: self.fits.load(Ordering::Relaxed),
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                requests as f64 / batches as f64
            },
            batch_sizes: histograms.batch_sizes.counts().to_vec(),
            latency_us_p50: histograms.latency_us.percentile(50.0).unwrap_or(0.0),
            latency_us_p95: histograms.latency_us.percentile(95.0).unwrap_or(0.0),
            latency_us_p99: histograms.latency_us.percentile(99.0).unwrap_or(0.0),
        }
    }
}

/// A point-in-time copy of [`ServeMetrics`]: what the `stats` operation
/// reports over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Work items currently queued (enqueued, not yet picked up).
    pub queue_depth: u64,
    /// Predictions served since start.
    pub requests: u64,
    /// Micro-batches served since start.
    pub batches: u64,
    /// Item-memory inserts applied since start.
    pub inserts: u64,
    /// Item-memory removals applied since start.
    pub removes: u64,
    /// Training observations folded into the online trainer since start.
    pub fits: u64,
    /// Mean predictions per micro-batch (`requests / batches`).
    pub mean_batch_size: f64,
    /// Batch-size histogram counts (bin `i` covers sizes around
    /// `(i + 1) · max_batch / bins`).
    pub batch_sizes: Vec<u64>,
    /// Median request latency (enqueue → reply) in microseconds.
    pub latency_us_p50: f64,
    /// 95th-percentile request latency in microseconds.
    pub latency_us_p95: f64,
    /// 99th-percentile request latency in microseconds.
    pub latency_us_p99: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_histograms_flow_into_the_snapshot() {
        let metrics = ServeMetrics::new(16);
        metrics.enqueued(5);
        metrics.dequeued(3);
        metrics.record_batch(
            3,
            [
                Duration::from_micros(100),
                Duration::from_micros(200),
                Duration::from_micros(90_000_000),
            ],
        );
        metrics.record_batch(1, [Duration::from_micros(150)]);
        metrics.record_insert();
        metrics.record_remove();
        metrics.record_fit();
        let snapshot = metrics.snapshot();
        assert_eq!(snapshot.queue_depth, 2);
        assert_eq!(snapshot.requests, 4);
        assert_eq!(snapshot.batches, 2);
        assert_eq!(snapshot.inserts, 1);
        assert_eq!(snapshot.removes, 1);
        assert_eq!(snapshot.fits, 1);
        assert!((snapshot.mean_batch_size - 2.0).abs() < 1e-12);
        assert_eq!(snapshot.batch_sizes.iter().sum::<u64>(), 2);
        assert!(snapshot.latency_us_p50 > 0.0);
        // The 90-second outlier clamps into the top bin instead of skewing
        // the range.
        assert!(snapshot.latency_us_p99 <= LATENCY_RANGE_US);
        assert!(snapshot.latency_us_p50 <= snapshot.latency_us_p95);
        assert!(snapshot.latency_us_p95 <= snapshot.latency_us_p99);
    }

    #[test]
    fn empty_metrics_snapshot_is_all_zero() {
        let snapshot = ServeMetrics::new(1).snapshot();
        assert_eq!(snapshot.requests, 0);
        assert_eq!(snapshot.mean_batch_size, 0.0);
        assert_eq!(snapshot.latency_us_p50, 0.0);
    }
}
