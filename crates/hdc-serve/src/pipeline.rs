//! The unified `Pipeline`/`Model` API: one typed builder over basis,
//! encoder and learner, one object to fit and serve — for **both** task
//! families the paper evaluates (classification, Table 1; regression over
//! circular variables, Table 2).
//!
//! Since PR 5 the builder is a thin fluent layer over the plain-data
//! [`PipelineSpec`](crate::PipelineSpec): every chain of builder calls
//! produces a spec value, and [`build`](ModelBuilder::build) hands it to
//! [`Pipeline::from_spec`], which is also exactly what
//! [`Pipeline::load`](crate::Pipeline) does when rebuilding a model from a
//! [`Snapshot`](crate::Snapshot). A pipeline is therefore a *value* you can
//! construct, inspect, hash and write to disk; the live [`Model`] is just
//! that value plus trainer state.

use std::fmt;
use std::path::Path;

use hdc_core::{BinaryHypervector, HdcError, HvMut, HypervectorBatch, TieBreak};
use hdc_encode::{Encoder, FieldSpec, Radians};
use hdc_learn::{metrics, CentroidClassifier, CentroidTrainer, RegressionModel, RegressionTrainer};
use rand::{rngs::StdRng, SeedableRng};

use crate::snapshot::Snapshot;
use crate::spec::{Basis, EncSpec, PipelineSpec, SpecInput, Task};

/// Object-safe seam over [`hdc_encode::Encoder`]: the two methods a
/// [`Model`] needs (`dim`, in-place `encode_into`), without the generic
/// `encode_batch` that keeps the full trait from being boxed. Every
/// `Encoder<X> + Send + Sync + Debug` implements it via the blanket impl,
/// so `Box<dyn DynEncoder<X>>` erases the concrete encoder type while the
/// batched fan-out is rebuilt on top (see [`Model::encode_batch`]).
pub trait DynEncoder<X: ?Sized>: Send + Sync + fmt::Debug {
    /// Dimensionality `d` of the produced hypervectors.
    fn dim(&self) -> usize;

    /// Encodes `input` into the provided row, overwriting its contents.
    fn encode_into(&self, input: &X, out: HvMut<'_>);
}

impl<X: ?Sized, E> DynEncoder<X> for E
where
    E: Encoder<X> + Send + Sync + fmt::Debug,
{
    fn dim(&self) -> usize {
        Encoder::dim(self)
    }

    fn encode_into(&self, input: &X, out: HvMut<'_>) {
        Encoder::encode_into(self, input, out);
    }
}

/// A buildable encoder specification: carries, at the type level, the input
/// type `Input` the finished [`Model`] will accept, and degrades to the
/// plain-data [`EncSpec`] the pipeline spec stores. Obtained from the
/// [`Enc`] constructors; consumed by [`ModelBuilder::build`].
pub trait EncoderSpec {
    /// The input type of the built encoder (and of the resulting model).
    type Input: ?Sized + SpecInput;

    /// The plain-data form of this spec (what [`PipelineSpec`] stores).
    fn data(&self) -> EncSpec;

    /// The basis family used when the builder's
    /// [`basis`](PipelineBuilder::basis) was never called — delegates to
    /// [`EncSpec::default_basis`], so defaults never quantize a linear
    /// range through a wrapping basis or vice versa.
    fn default_basis(&self) -> Basis {
        self.data().default_basis()
    }
}

/// Namespace of encoder-spec constructors, mirroring the encoder taxonomy
/// of `hdc-encode` (Aygun et al.'s survey): pick one per pipeline.
///
/// | Constructor | Model input | Backing encoder |
/// |---|---|---|
/// | [`Enc::scalar`] | `f64` | [`hdc_encode::ScalarEncoder`] |
/// | [`Enc::angle`] | [`Radians`] | [`hdc_encode::AngleEncoder`] |
/// | [`Enc::categorical`] | `usize` | [`hdc_encode::CategoricalEncoder`] |
/// | [`Enc::sequence`] | `[usize]` | [`hdc_encode::SequenceEncoder`] |
/// | [`Enc::record`] | `[f64]` | [`hdc_encode::FeatureRecordEncoder`] |
pub struct Enc;

impl Enc {
    /// A scalar pipeline over `[low, high]`, quantized into the basis's `m`
    /// levels.
    #[must_use]
    pub fn scalar(low: f64, high: f64) -> ScalarSpec {
        ScalarSpec { low, high }
    }

    /// An angle pipeline over `[0, 2π)`, quantized into the basis's `m`
    /// sectors (wrap-correct with a circular basis).
    #[must_use]
    pub fn angle() -> AngleSpec {
        AngleSpec
    }

    /// A categorical pipeline over `n` symbols (always a random basis —
    /// symbols carry no ordinal structure; the pipeline basis is ignored).
    #[must_use]
    pub fn categorical(n: usize) -> CategoricalSpec {
        CategoricalSpec { n }
    }

    /// A sequence pipeline over an alphabet of `n` symbols (position-
    /// permuted random symbol hypervectors; the pipeline basis is ignored).
    #[must_use]
    pub fn sequence(n: usize) -> SequenceSpec {
        SequenceSpec { n }
    }

    /// A record pipeline over raw `f64` feature rows, one [`FieldSpec`] per
    /// position; scalar and angle fields quantize through the pipeline
    /// basis.
    #[must_use]
    pub fn record(fields: Vec<FieldSpec>) -> RecordSpec {
        RecordSpec { fields }
    }
}

/// Spec built by [`Enc::scalar`].
#[derive(Debug, Clone, Copy)]
pub struct ScalarSpec {
    low: f64,
    high: f64,
}

impl EncoderSpec for ScalarSpec {
    type Input = f64;

    fn data(&self) -> EncSpec {
        EncSpec::Scalar {
            low: self.low,
            high: self.high,
        }
    }
}

/// Spec built by [`Enc::angle`].
#[derive(Debug, Clone, Copy)]
pub struct AngleSpec;

impl EncoderSpec for AngleSpec {
    type Input = Radians;

    fn data(&self) -> EncSpec {
        EncSpec::Angle
    }
}

/// Spec built by [`Enc::categorical`].
#[derive(Debug, Clone, Copy)]
pub struct CategoricalSpec {
    n: usize,
}

impl EncoderSpec for CategoricalSpec {
    type Input = usize;

    fn data(&self) -> EncSpec {
        EncSpec::Categorical { n: self.n }
    }
}

/// Spec built by [`Enc::sequence`].
#[derive(Debug, Clone, Copy)]
pub struct SequenceSpec {
    n: usize,
}

impl EncoderSpec for SequenceSpec {
    type Input = [usize];

    fn data(&self) -> EncSpec {
        EncSpec::Sequence { n: self.n }
    }
}

/// Spec built by [`Enc::record`].
#[derive(Debug, Clone)]
pub struct RecordSpec {
    fields: Vec<FieldSpec>,
}

impl EncoderSpec for RecordSpec {
    type Input = [f64];

    fn data(&self) -> EncSpec {
        EncSpec::Record {
            fields: self.fields.clone(),
        }
    }
}

/// Entry point of the unified API: [`Pipeline::builder`] starts a typed
/// builder chain ending in a [`Model`]; [`Pipeline::from_spec`] builds the
/// same model from a plain-data [`PipelineSpec`]; [`Pipeline::load`]
/// rebuilds a trained model from a [`Snapshot`] on disk.
///
/// ```
/// use hdc_serve::{Basis, Enc, Pipeline};
///
/// let mut model = Pipeline::builder(10_000)
///     .seed(7)
///     .classes(2)
///     .basis(Basis::Circular { m: 24, r: 0.0 })
///     .encoder(Enc::angle())
///     .build()?;
/// // Hours on the daily circle: morning (class 0) vs evening (class 1).
/// use hdc_serve::Radians;
/// let hours: Vec<Radians> = (0..24).map(|h| Radians::periodic(h as f64, 24.0)).collect();
/// let labels: Vec<usize> = (0..24).map(|h| usize::from(h >= 12)).collect();
/// model.fit_batch(&hours, &labels)?;
/// assert_eq!(model.predict(&Radians::periodic(9.0, 24.0)), 0);
/// assert_eq!(model.predict(&Radians::periodic(21.0, 24.0)), 1);
/// # Ok::<(), hdc_serve::HdcError>(())
/// ```
///
/// A regression pipeline differs only in the task:
///
/// ```
/// use hdc_serve::{Enc, Pipeline};
///
/// let mut model = Pipeline::builder(4_096)
///     .seed(3)
///     .regression(0.0, 1.0, 32)
///     .encoder(Enc::scalar(0.0, 1.0))
///     .build()?;
/// let xs: Vec<f64> = (0..64).map(|i| i as f64 / 63.0).collect();
/// model.fit_value_batch(&xs, &xs)?;
/// assert!((model.predict_value(&0.5) - 0.5).abs() < 0.2);
/// # Ok::<(), hdc_serve::HdcError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Pipeline;

impl Pipeline {
    /// Starts a builder for `dim`-bit pipelines. Defaults: seed `0`,
    /// two-class classification, and — unless
    /// [`basis`](PipelineBuilder::basis) is called — the encoder spec's own
    /// [`default_basis`](EncSpec::default_basis) (`m = 16`: level for
    /// scalars, circular otherwise).
    #[must_use]
    pub fn builder(dim: usize) -> PipelineBuilder {
        PipelineBuilder {
            dim,
            seed: 0,
            basis: None,
            task: Task::Classification { classes: 2 },
        }
    }

    /// Builds a live [`Model`] from a plain-data [`PipelineSpec`] — the
    /// single construction path the builder, snapshots and warm restarts
    /// all funnel through. Deterministic: the same spec always yields a
    /// bit-identical (untrained) model.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::SpecMismatch`] if `X` is not the input type of
    /// the spec's encoder, and [`HdcError`] for invalid dimension, basis,
    /// encoder or task parameters.
    pub fn from_spec<X: ?Sized + SpecInput>(spec: PipelineSpec) -> Result<Model<X>, HdcError> {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let encoder = X::build_encoder(&spec.encoder, spec.dim, spec.basis, &mut rng)?;
        let state = TaskState::fresh(&spec, &mut rng)?;
        Ok(Model {
            spec,
            encoder,
            state,
        })
    }

    /// Rebuilds a trained [`Model`] from a [`Snapshot`] value: the spec
    /// header reconstructs the encoders deterministically, then the saved
    /// trainer accumulators are adopted verbatim — so the loaded model
    /// predicts **bit-identically** to the model that was saved.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::SpecMismatch`] for a wrong input type and
    /// [`HdcError::Snapshot`] for internally inconsistent state.
    pub fn from_snapshot<X: ?Sized + SpecInput>(snapshot: &Snapshot) -> Result<Model<X>, HdcError> {
        let mut model = Self::from_spec::<X>(snapshot.spec().clone())?;
        model.restore(snapshot)?;
        Ok(model)
    }

    /// Reads a [`Snapshot`] file and rebuilds its model — the warm-restart
    /// entry point pairing [`Model::save`].
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Snapshot`] for I/O failures or a corrupt file,
    /// and [`HdcError::SpecMismatch`] for a wrong input type.
    pub fn load<X: ?Sized + SpecInput>(path: impl AsRef<Path>) -> Result<Model<X>, HdcError> {
        Self::from_snapshot(&Snapshot::read(path)?)
    }
}

/// The untyped half of the builder: dimensionality, seed, basis family and
/// task. Calling [`encoder`](Self::encoder) fixes the input type and moves
/// to a [`ModelBuilder`].
#[derive(Debug, Clone, Copy)]
pub struct PipelineBuilder {
    dim: usize,
    seed: u64,
    basis: Option<Basis>,
    task: Task,
}

impl PipelineBuilder {
    /// Seed of the pipeline's deterministic RNG (basis draws, keys).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The basis family scalar/angle/record encoders quantize through
    /// (overriding the spec's [`default_basis`](EncSpec::default_basis)).
    #[must_use]
    pub fn basis(mut self, basis: Basis) -> Self {
        self.basis = Some(basis);
        self
    }

    /// Classification over `classes` labels (shorthand for
    /// [`task`](Self::task) with [`Task::Classification`]).
    #[must_use]
    pub fn classes(mut self, classes: usize) -> Self {
        self.task = Task::Classification { classes };
        self
    }

    /// Regression over labels in `[low, high]` quantized into `levels`
    /// grid points (shorthand for [`task`](Self::task) with
    /// [`Task::Regression`]).
    #[must_use]
    pub fn regression(mut self, low: f64, high: f64, levels: usize) -> Self {
        self.task = Task::Regression { low, high, levels };
        self
    }

    /// The task family, as plain data.
    #[must_use]
    pub fn task(mut self, task: Task) -> Self {
        self.task = task;
        self
    }

    /// Selects the encoder spec, fixing the model's input type.
    #[must_use]
    pub fn encoder<S: EncoderSpec>(self, spec: S) -> ModelBuilder<S> {
        ModelBuilder { base: self, spec }
    }
}

/// The typed half of the builder: everything is configured, only
/// [`build`](Self::build) is left.
#[derive(Debug, Clone)]
pub struct ModelBuilder<S> {
    base: PipelineBuilder,
    spec: S,
}

impl<S: EncoderSpec> ModelBuilder<S> {
    /// The plain-data [`PipelineSpec`] this builder chain describes —
    /// inspect it, hash it, persist it, or [`build`](Self::build) it.
    #[must_use]
    pub fn spec(&self) -> PipelineSpec {
        let encoder = self.spec.data();
        let basis = self.base.basis.unwrap_or_else(|| encoder.default_basis());
        PipelineSpec {
            dim: self.base.dim,
            seed: self.base.seed,
            basis,
            encoder,
            task: self.base.task,
        }
    }

    /// Builds the [`Model`]: assembles the [`PipelineSpec`] and hands it to
    /// [`Pipeline::from_spec`].
    ///
    /// # Errors
    ///
    /// Returns [`HdcError`] for invalid dimension, task, basis or encoder
    /// parameters.
    pub fn build(self) -> Result<Model<S::Input>, HdcError> {
        Pipeline::from_spec(self.spec())
    }
}

/// The task-specific half of a live model: trainer accumulators plus the
/// finalized head they deterministically refresh into. Shared with the
/// runtime (which moves it into its background trainer thread) and the
/// snapshot format (which captures/restores exactly this state).
pub(crate) enum TaskState {
    /// Centroid classification: per-class accumulators + finalized
    /// class-vectors.
    Classify {
        /// Accumulated per-class counters.
        trainer: CentroidTrainer,
        /// `trainer.finish_deterministic(TieBreak::Alternate)`.
        classifier: CentroidClassifier,
    },
    /// Associative regression: one bound-pair bundle + the finalized
    /// integer-readout model.
    Regress {
        /// Accumulated bundle counters.
        trainer: RegressionTrainer,
        /// `trainer.finish_integer()`.
        model: RegressionModel,
    },
}

impl TaskState {
    /// The untrained state for a spec — also consumes the spec's RNG
    /// stream deterministically (the regression label table is drawn right
    /// after the encoder), so `(spec, seed)` fully determines the state.
    pub(crate) fn fresh(spec: &PipelineSpec, rng: &mut StdRng) -> Result<Self, HdcError> {
        match spec.task {
            Task::Classification { classes } => {
                let trainer = CentroidTrainer::new(classes, spec.dim)?;
                let classifier = trainer.finish_deterministic(TieBreak::Alternate);
                Ok(TaskState::Classify {
                    trainer,
                    classifier,
                })
            }
            Task::Regression { low, high, levels } => {
                let label =
                    hdc_encode::ScalarEncoder::with_levels(low, high, levels, spec.dim, rng)?;
                let trainer = RegressionTrainer::new(label);
                let model = trainer.finish_integer();
                Ok(TaskState::Regress { trainer, model })
            }
        }
    }

    /// The task family this state serves.
    pub(crate) fn task_name(&self) -> &'static str {
        match self {
            TaskState::Classify { .. } => "classification",
            TaskState::Regress { .. } => "regression",
        }
    }

    /// Re-finalizes the head from the trainer accumulators (deterministic).
    pub(crate) fn refresh(&mut self) {
        match self {
            TaskState::Classify {
                trainer,
                classifier,
            } => *classifier = trainer.finish_deterministic(TieBreak::Alternate),
            TaskState::Regress { trainer, model } => *model = trainer.finish_integer(),
        }
    }
}

/// A complete HDC pipeline behind one object: basis-backed encoder plus the
/// task's trainer and finalized head, with per-sample and batched
/// (parallel, bit-identical) forms of every stage.
///
/// Built by [`Pipeline::builder`] / [`Pipeline::from_spec`] / loaded from a
/// [`Snapshot`]. `X` is the input type fixed by the [`Enc`] spec (`f64`,
/// [`Radians`], `usize`, `[usize]` or `[f64]`); the prediction type is
/// fixed by the spec's [`Task`]:
///
/// * [`Task::Classification`] — [`fit`](Self::fit)/
///   [`fit_batch`](Self::fit_batch)/[`predict`](Self::predict)/
///   [`evaluate`](Self::evaluate) over `usize` labels;
/// * [`Task::Regression`] — [`fit_value`](Self::fit_value)/
///   [`fit_value_batch`](Self::fit_value_batch)/
///   [`predict_value`](Self::predict_value)/
///   [`evaluate_mae`](Self::evaluate_mae) over `f64` labels.
///
/// Fallible mutation through the wrong family returns
/// [`HdcError::TaskMismatch`]; infallible hot-path reads (`predict*`)
/// panic, exactly like their dimension checks.
///
/// Training is incremental: every fit folds samples into the trainer
/// accumulators and deterministically re-finalizes the head, so the same
/// samples always produce a bit-identical model — the property sharded
/// serving and snapshot restore rely on.
pub struct Model<X: ?Sized> {
    spec: PipelineSpec,
    encoder: Box<dyn DynEncoder<X>>,
    state: TaskState,
}

impl<X: ?Sized> fmt::Debug for Model<X> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let observed = match &self.state {
            TaskState::Classify { trainer, .. } => trainer.counts().iter().sum(),
            TaskState::Regress { trainer, .. } => trainer.observed(),
        };
        f.debug_struct("Model")
            .field("spec", &self.spec)
            .field("observed", &observed)
            .field("encoder", &self.encoder)
            .finish()
    }
}

impl<X: ?Sized + Sync> Model<X> {
    /// Hypervector dimensionality `d`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.spec.dim
    }

    /// The plain-data spec this model was built from.
    #[must_use]
    pub fn spec(&self) -> &PipelineSpec {
        &self.spec
    }

    /// The task family (as plain data).
    #[must_use]
    pub fn task(&self) -> Task {
        self.spec.task
    }

    /// The basis family this pipeline was built with.
    #[must_use]
    pub fn basis(&self) -> Basis {
        self.spec.basis
    }

    /// Number of classes.
    ///
    /// # Panics
    ///
    /// Panics on a regression pipeline (which has no class set).
    #[must_use]
    pub fn classes(&self) -> usize {
        match &self.state {
            TaskState::Classify { trainer, .. } => trainer.classes(),
            TaskState::Regress { .. } => {
                panic!("classes() requires a classification pipeline, found regression")
            }
        }
    }

    /// Total number of training samples observed (either task).
    #[must_use]
    pub fn observed(&self) -> usize {
        match &self.state {
            TaskState::Classify { trainer, .. } => trainer.counts().iter().sum(),
            TaskState::Regress { trainer, .. } => trainer.observed(),
        }
    }

    /// Number of training samples observed per class.
    ///
    /// # Panics
    ///
    /// Panics on a regression pipeline.
    #[must_use]
    pub fn counts(&self) -> &[usize] {
        match &self.state {
            TaskState::Classify { trainer, .. } => trainer.counts(),
            TaskState::Regress { .. } => {
                panic!("counts() requires a classification pipeline, found regression")
            }
        }
    }

    /// The finalized classifier (the replicated state sharded serving
    /// copies onto every shard).
    ///
    /// # Panics
    ///
    /// Panics on a regression pipeline — use
    /// [`regressor`](Self::regressor).
    #[must_use]
    pub fn classifier(&self) -> &CentroidClassifier {
        match &self.state {
            TaskState::Classify { classifier, .. } => classifier,
            TaskState::Regress { .. } => {
                panic!("classifier() requires a classification pipeline, found regression")
            }
        }
    }

    /// The finalized regression model (integer readout).
    ///
    /// # Panics
    ///
    /// Panics on a classification pipeline — use
    /// [`classifier`](Self::classifier).
    #[must_use]
    pub fn regressor(&self) -> &RegressionModel {
        match &self.state {
            TaskState::Regress { model, .. } => model,
            TaskState::Classify { .. } => {
                panic!("regressor() requires a regression pipeline, found classification")
            }
        }
    }

    fn task_mismatch(&self, expected: &'static str) -> HdcError {
        HdcError::TaskMismatch {
            expected,
            found: self.state.task_name(),
        }
    }

    /// Encodes one sample into an owned hypervector.
    #[must_use]
    pub fn encode(&self, input: &X) -> BinaryHypervector {
        let mut words = vec![0u64; self.spec.dim.div_ceil(64)];
        self.encoder
            .encode_into(input, HvMut::new(self.spec.dim, &mut words));
        BinaryHypervector::from_words(self.spec.dim, words)
    }

    /// Encodes a batch of samples into one contiguous arena, one row per
    /// input in order, parallelized across the worker pool — bit-identical
    /// to per-sample [`encode`](Self::encode) (rows are independent).
    pub fn encode_batch<'a, I>(&self, inputs: I) -> HypervectorBatch
    where
        I: IntoIterator<Item = &'a X>,
        X: 'a,
    {
        let refs: Vec<&X> = inputs.into_iter().collect();
        self.encode_refs(&refs)
    }

    /// The shared parallel arena fill behind [`encode_batch`](Self::encode_batch):
    /// callers that must validate input counts first (against labels)
    /// collect the refs themselves, so validation failures cost nothing.
    fn encode_refs(&self, refs: &[&X]) -> HypervectorBatch {
        let mut batch = HypervectorBatch::zeros(self.spec.dim, refs.len());
        if refs.is_empty() {
            return batch;
        }
        let rows_per_chunk = if refs.len() < minipool::MIN_PARALLEL_ITEMS {
            refs.len()
        } else {
            refs.len().div_ceil(minipool::max_threads())
        };
        let encoder = self.encoder.as_ref();
        let mut chunks: Vec<_> = batch.chunks_mut(rows_per_chunk).collect();
        minipool::par_fill_indexed(&mut chunks, |_, chunk| {
            for (row_index, row) in chunk.rows_mut() {
                encoder.encode_into(refs[row_index], row);
            }
        });
        batch
    }

    /// Checks an input count against its per-sample values before any
    /// encoding work is spent.
    fn check_paired(refs: usize, values: usize) -> Result<(), HdcError> {
        if refs != values {
            return Err(HdcError::BatchLengthMismatch {
                rows: refs,
                labels: values,
            });
        }
        Ok(())
    }

    // --- classification surface -----------------------------------------

    /// Folds one labelled sample into the model and re-finalizes the
    /// class-vectors. For more than a handful of samples prefer
    /// [`fit_batch`](Self::fit_batch), which finalizes once per call.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::LabelOutOfRange`] for an unknown label and
    /// [`HdcError::TaskMismatch`] on a regression pipeline.
    pub fn fit(&mut self, input: &X, label: usize) -> Result<(), HdcError> {
        if !matches!(self.state, TaskState::Classify { .. }) {
            return Err(self.task_mismatch("classification"));
        }
        let hv = self.encode(input);
        let TaskState::Classify { trainer, .. } = &mut self.state else {
            unreachable!("task checked above");
        };
        trainer.observe(&hv, label)?;
        self.state.refresh();
        Ok(())
    }

    /// Folds a batch of labelled samples into the model in one parallel
    /// encode + accumulate pass, then re-finalizes the class-vectors.
    /// Produces exactly the model repeated [`fit`](Self::fit) calls would.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::BatchLengthMismatch`] if `labels` does not match
    /// the number of inputs, [`HdcError::LabelOutOfRange`] for an unknown
    /// label (in which case nothing is accumulated) and
    /// [`HdcError::TaskMismatch`] on a regression pipeline.
    pub fn fit_batch<'a, I>(&mut self, inputs: I, labels: &[usize]) -> Result<(), HdcError>
    where
        I: IntoIterator<Item = &'a X>,
        X: 'a,
    {
        if !matches!(self.state, TaskState::Classify { .. }) {
            return Err(self.task_mismatch("classification"));
        }
        let refs: Vec<&X> = inputs.into_iter().collect();
        Self::check_paired(refs.len(), labels.len())?;
        let batch = self.encode_refs(&refs);
        let TaskState::Classify { trainer, .. } = &mut self.state else {
            unreachable!("task checked above");
        };
        trainer.observe_batch(&batch, labels)?;
        self.state.refresh();
        Ok(())
    }

    /// Predicts the label of one sample.
    ///
    /// # Panics
    ///
    /// Panics on a regression pipeline — use
    /// [`predict_value`](Self::predict_value).
    #[must_use]
    pub fn predict(&self, input: &X) -> usize {
        self.classifier().predict(&self.encode(input))
    }

    /// Predicts a batch of samples: parallel batched encode into one arena,
    /// then parallel nearest-class-vector search over its rows.
    /// Bit-identical to per-sample [`predict`](Self::predict).
    ///
    /// # Panics
    ///
    /// Panics on a regression pipeline.
    pub fn predict_batch<'a, I>(&self, inputs: I) -> Vec<usize>
    where
        I: IntoIterator<Item = &'a X>,
        X: 'a,
    {
        self.classifier().predict_rows(&self.encode_batch(inputs))
    }

    /// Predicts every row of an already encoded arena (the entry point
    /// sharded serving feeds routed query batches through).
    ///
    /// # Panics
    ///
    /// Panics on a regression pipeline, or if the batch's dimensionality
    /// differs from the model's.
    #[must_use]
    pub fn predict_encoded(&self, batch: &HypervectorBatch) -> Vec<usize> {
        self.classifier().predict_rows(batch)
    }

    /// Classification accuracy over a labelled evaluation set.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::BatchLengthMismatch`] if `labels` does not match
    /// the number of inputs, [`HdcError::EmptyInput`] for an empty set and
    /// [`HdcError::TaskMismatch`] on a regression pipeline.
    pub fn evaluate<'a, I>(&self, inputs: I, labels: &[usize]) -> Result<f64, HdcError>
    where
        I: IntoIterator<Item = &'a X>,
        X: 'a,
    {
        let TaskState::Classify { classifier, .. } = &self.state else {
            return Err(self.task_mismatch("classification"));
        };
        let refs: Vec<&X> = inputs.into_iter().collect();
        Self::check_paired(refs.len(), labels.len())?;
        if refs.is_empty() {
            return Err(HdcError::EmptyInput);
        }
        let batch = self.encode_refs(&refs);
        Ok(metrics::accuracy(&classifier.predict_rows(&batch), labels))
    }

    // --- regression surface ----------------------------------------------

    /// Folds one `(sample, value)` pair into the regression bundle and
    /// re-finalizes the integer readout. For more than a handful of
    /// samples prefer [`fit_value_batch`](Self::fit_value_batch).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::TaskMismatch`] on a classification pipeline.
    pub fn fit_value(&mut self, input: &X, value: f64) -> Result<(), HdcError> {
        if !matches!(self.state, TaskState::Regress { .. }) {
            return Err(self.task_mismatch("regression"));
        }
        let hv = self.encode(input);
        let TaskState::Regress { trainer, .. } = &mut self.state else {
            unreachable!("task checked above");
        };
        trainer.observe(&hv, value);
        self.state.refresh();
        Ok(())
    }

    /// Folds a batch of `(sample, value)` pairs into the model in one
    /// parallel encode + bind + accumulate pass, then re-finalizes the
    /// readout. Produces exactly the model repeated
    /// [`fit_value`](Self::fit_value) calls would.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::BatchLengthMismatch`] if `values` does not match
    /// the number of inputs and [`HdcError::TaskMismatch`] on a
    /// classification pipeline.
    pub fn fit_value_batch<'a, I>(&mut self, inputs: I, values: &[f64]) -> Result<(), HdcError>
    where
        I: IntoIterator<Item = &'a X>,
        X: 'a,
    {
        if !matches!(self.state, TaskState::Regress { .. }) {
            return Err(self.task_mismatch("regression"));
        }
        let refs: Vec<&X> = inputs.into_iter().collect();
        Self::check_paired(refs.len(), values.len())?;
        let batch = self.encode_refs(&refs);
        let TaskState::Regress { trainer, .. } = &mut self.state else {
            unreachable!("task checked above");
        };
        trainer.observe_batch(&batch, values)?;
        self.state.refresh();
        Ok(())
    }

    /// Predicts the real-valued label of one sample.
    ///
    /// # Panics
    ///
    /// Panics on a classification pipeline — use
    /// [`predict`](Self::predict).
    #[must_use]
    pub fn predict_value(&self, input: &X) -> f64 {
        self.regressor().predict(&self.encode(input))
    }

    /// Predicts a batch of samples: parallel batched encode, then parallel
    /// integer-readout scoring per row. Bit-identical to per-sample
    /// [`predict_value`](Self::predict_value).
    ///
    /// # Panics
    ///
    /// Panics on a classification pipeline.
    pub fn predict_value_batch<'a, I>(&self, inputs: I) -> Vec<f64>
    where
        I: IntoIterator<Item = &'a X>,
        X: 'a,
    {
        self.regressor().predict_rows(&self.encode_batch(inputs))
    }

    /// Predicts every row of an already encoded arena — the entry point
    /// sharded value serving feeds routed query batches through.
    ///
    /// # Panics
    ///
    /// Panics on a classification pipeline, or if the batch's
    /// dimensionality differs from the model's.
    #[must_use]
    pub fn predict_values_encoded(&self, batch: &HypervectorBatch) -> Vec<f64> {
        self.regressor().predict_rows(batch)
    }

    /// Mean absolute error over a labelled evaluation set — the paper's
    /// Table 2 metric.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::BatchLengthMismatch`] if `values` does not match
    /// the number of inputs, [`HdcError::EmptyInput`] for an empty set and
    /// [`HdcError::TaskMismatch`] on a classification pipeline.
    pub fn evaluate_mae<'a, I>(&self, inputs: I, values: &[f64]) -> Result<f64, HdcError>
    where
        I: IntoIterator<Item = &'a X>,
        X: 'a,
    {
        let TaskState::Regress { model, .. } = &self.state else {
            return Err(self.task_mismatch("regression"));
        };
        let refs: Vec<&X> = inputs.into_iter().collect();
        Self::check_paired(refs.len(), values.len())?;
        if refs.is_empty() {
            return Err(HdcError::EmptyInput);
        }
        let batch = self.encode_refs(&refs);
        Ok(metrics::mae(&model.predict_rows(&batch), values))
    }

    // --- snapshot surface -------------------------------------------------

    /// Captures the model as a self-contained [`Snapshot`] value (spec +
    /// trainer accumulators; no item memories — those live in the serving
    /// fleet and are captured by the runtime's snapshot path).
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::of_state(self.spec.clone(), &self.state, Vec::new())
    }

    /// Writes the model's [`snapshot`](Self::snapshot) to a file — the
    /// durable half of [`Pipeline::load`].
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Snapshot`] on I/O failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), HdcError> {
        self.snapshot().write(path)
    }

    /// Adopts the trainer state of `snapshot` (which must describe the
    /// same spec), re-finalizing the head — the in-place form of
    /// [`Pipeline::from_snapshot`].
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Snapshot`] if the snapshot's spec differs from
    /// the model's or its state is internally inconsistent.
    pub fn restore(&mut self, snapshot: &Snapshot) -> Result<(), HdcError> {
        if *snapshot.spec() != self.spec {
            return Err(HdcError::Snapshot(
                "snapshot spec does not match the model's spec".into(),
            ));
        }
        snapshot.restore_into(&mut self.state)
    }

    /// Decomposes the model into the pieces a long-running runtime takes
    /// ownership of: the spec, the boxed encoder and the task state.
    pub(crate) fn into_parts(self) -> (PipelineSpec, Box<dyn DynEncoder<X>>, TaskState) {
        (self.spec, self.encoder, self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn angle_model(seed: u64) -> Model<Radians> {
        Pipeline::builder(4_096)
            .seed(seed)
            .classes(2)
            .basis(Basis::Circular { m: 24, r: 0.0 })
            .encoder(Enc::angle())
            .build()
            .unwrap()
    }

    fn day_night() -> (Vec<Radians>, Vec<usize>) {
        let hours: Vec<Radians> = (0..48)
            .map(|i| Radians::periodic(i as f64 / 2.0, 24.0))
            .collect();
        let labels: Vec<usize> = (0..48).map(|i| usize::from(i >= 24)).collect();
        (hours, labels)
    }

    #[test]
    fn builder_is_deterministic_per_seed() {
        let (hours, labels) = day_night();
        let mut a = angle_model(3);
        let mut b = angle_model(3);
        a.fit_batch(&hours, &labels).unwrap();
        b.fit_batch(&hours, &labels).unwrap();
        assert_eq!(a.classifier(), b.classifier());
        let mut c = angle_model(4);
        c.fit_batch(&hours, &labels).unwrap();
        assert_ne!(a.classifier(), c.classifier());
    }

    #[test]
    fn builder_chain_is_a_spec_value() {
        let chain = Pipeline::builder(2_048)
            .seed(11)
            .basis(Basis::Circular { m: 24, r: 0.5 })
            .classes(3)
            .encoder(Enc::angle());
        let spec = chain.spec();
        assert_eq!(
            spec,
            PipelineSpec {
                dim: 2_048,
                seed: 11,
                basis: Basis::Circular { m: 24, r: 0.5 },
                encoder: EncSpec::Angle,
                task: Task::Classification { classes: 3 },
            }
        );
        // Building through the builder and through the spec is the same
        // construction: bit-identical encoders.
        let (hours, labels) = day_night();
        let mut from_builder = chain.build().unwrap();
        let mut from_spec = Pipeline::from_spec::<Radians>(spec).unwrap();
        from_builder.fit_batch(&hours, &labels).unwrap();
        from_spec.fit_batch(&hours, &labels).unwrap();
        assert_eq!(from_builder.classifier(), from_spec.classifier());
    }

    #[test]
    fn fit_batch_matches_incremental_fit() {
        let (hours, labels) = day_night();
        let mut batched = angle_model(1);
        batched.fit_batch(&hours, &labels).unwrap();
        let mut incremental = angle_model(1);
        for (h, &l) in hours.iter().zip(&labels) {
            incremental.fit(h, l).unwrap();
        }
        assert_eq!(batched.classifier(), incremental.classifier());
        assert_eq!(batched.counts(), &[24, 24]);
        assert_eq!(batched.observed(), 48);
    }

    #[test]
    fn predict_batch_matches_per_sample() {
        let (hours, labels) = day_night();
        let mut model = angle_model(2);
        model.fit_batch(&hours, &labels).unwrap();
        let batched = model.predict_batch(&hours);
        let serial: Vec<usize> = hours.iter().map(|h| model.predict(h)).collect();
        assert_eq!(batched, serial);
        let encoded = model.encode_batch(&hours);
        assert_eq!(model.predict_encoded(&encoded), serial);
        let accuracy = model.evaluate(&hours, &labels).unwrap();
        assert!(accuracy > 0.9, "train accuracy {accuracy}");
    }

    #[test]
    fn scalar_and_categorical_and_sequence_pipelines_build() {
        let mut scalar = Pipeline::builder(2_048)
            .basis(Basis::Level { m: 16, r: 0.0 })
            .encoder(Enc::scalar(0.0, 1.0))
            .build()
            .unwrap();
        let xs = [0.1f64, 0.2, 0.8, 0.9];
        scalar.fit_batch(&xs, &[0, 0, 1, 1]).unwrap();
        assert_eq!(scalar.predict(&0.15), 0);
        assert_eq!(scalar.predict(&0.85), 1);

        let mut cat = Pipeline::builder(2_048)
            .classes(3)
            .encoder(Enc::categorical(9))
            .build()
            .unwrap();
        let symbols: Vec<usize> = (0..9).collect();
        let labels: Vec<usize> = symbols.iter().map(|s| s % 3).collect();
        cat.fit_batch(&symbols, &labels).unwrap();
        assert_eq!(cat.predict(&4), 1);

        let mut seq = Pipeline::builder(2_048)
            .encoder(Enc::sequence(5))
            .build()
            .unwrap();
        let seqs: Vec<Vec<usize>> =
            vec![vec![0, 1, 2], vec![0, 2, 1], vec![4, 3, 2], vec![3, 4, 2]];
        seq.fit_batch(seqs.iter().map(Vec::as_slice), &[0, 0, 1, 1])
            .unwrap();
        assert_eq!(seq.predict(&[0usize, 1, 2][..]), 0);
    }

    #[test]
    fn default_basis_is_per_spec() {
        // A scalar pipeline built without .basis() must not quantize its
        // linear range through a wrapping basis: the interval's ends stay
        // quasi-orthogonal under the Level default.
        let model = Pipeline::builder(4_096)
            .encoder(Enc::scalar(0.0, 100.0))
            .build()
            .unwrap();
        assert_eq!(model.basis(), Basis::Level { m: 16, r: 0.0 });
        let wrap = model.encode(&0.0).normalized_hamming(&model.encode(&100.0));
        assert!((wrap - 0.5).abs() < 0.06, "scalar ends wrapped: {wrap}");
        // Angle pipelines keep the circular default, and an explicit basis
        // always wins.
        let angle = Pipeline::builder(1_024)
            .encoder(Enc::angle())
            .build()
            .unwrap();
        assert_eq!(angle.basis(), Basis::Circular { m: 16, r: 0.0 });
        let explicit = Pipeline::builder(1_024)
            .basis(Basis::Random { m: 8 })
            .encoder(Enc::scalar(0.0, 1.0))
            .build()
            .unwrap();
        assert_eq!(explicit.basis(), Basis::Random { m: 8 });
    }

    #[test]
    fn record_pipeline_classifies_feature_rows() {
        let mut model = Pipeline::builder(4_096)
            .seed(5)
            .classes(2)
            .basis(Basis::Circular { m: 16, r: 0.0 })
            .encoder(Enc::record(vec![
                FieldSpec::scalar(0.0, 1.0),
                FieldSpec::angle(),
            ]))
            .build()
            .unwrap();
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                if i % 2 == 0 {
                    vec![0.1 + 0.01 * i as f64 / 20.0, 0.3]
                } else {
                    vec![0.9 - 0.01 * i as f64 / 20.0, 3.1]
                }
            })
            .collect();
        let labels: Vec<usize> = (0..20).map(|i| i % 2).collect();
        model
            .fit_batch(rows.iter().map(Vec::as_slice), &labels)
            .unwrap();
        assert_eq!(model.predict(&[0.12, 0.25][..]), 0);
        assert_eq!(model.predict(&[0.88, 3.2][..]), 1);
        assert!(format!("{model:?}").contains("Model"));
    }

    #[test]
    fn build_rejects_invalid_parameters() {
        assert!(Pipeline::builder(0).encoder(Enc::angle()).build().is_err());
        assert!(Pipeline::builder(64)
            .classes(0)
            .encoder(Enc::angle())
            .build()
            .is_err());
        assert!(Pipeline::builder(64)
            .basis(Basis::Circular { m: 8, r: 1.5 })
            .encoder(Enc::angle())
            .build()
            .is_err());
        assert!(Pipeline::builder(64)
            .encoder(Enc::scalar(1.0, 0.0))
            .build()
            .is_err());
        assert!(Pipeline::builder(64)
            .encoder(Enc::record(vec![]))
            .build()
            .is_err());
        // Degenerate regression tasks are refused too (inverted label
        // range; fewer than two levels).
        assert!(Pipeline::builder(64)
            .regression(1.0, 0.0, 8)
            .encoder(Enc::angle())
            .build()
            .is_err());
        assert!(Pipeline::builder(64)
            .regression(0.0, 1.0, 1)
            .encoder(Enc::angle())
            .build()
            .is_err());
    }

    #[test]
    fn fit_errors_leave_model_usable() {
        let (hours, labels) = day_night();
        let mut model = angle_model(6);
        model.fit_batch(&hours, &labels).unwrap();
        let before = model.classifier().clone();
        assert!(matches!(
            model.fit_batch(&hours, &labels[..10]),
            Err(HdcError::BatchLengthMismatch { .. })
        ));
        assert!(matches!(
            model.fit(&hours[0], 7),
            Err(HdcError::LabelOutOfRange { .. })
        ));
        assert_eq!(model.classifier(), &before);
        assert!(matches!(
            model.evaluate(&hours[..2], &labels[..3]),
            Err(HdcError::BatchLengthMismatch { .. })
        ));
        assert!(matches!(
            model.evaluate(&[], &[]),
            Err(HdcError::EmptyInput)
        ));
    }

    #[test]
    fn regression_pipeline_learns_and_batches_bit_identically() {
        let mut model = Pipeline::builder(8_192)
            .seed(17)
            .regression(0.0, 1.0, 32)
            .encoder(Enc::record(vec![
                FieldSpec::scalar(0.0, 1.0),
                FieldSpec::angle(),
            ]))
            .build()
            .unwrap();
        assert!(model.task().is_regression());
        let rows: Vec<Vec<f64>> = (0..120)
            .map(|i| {
                let x = i as f64 / 119.0;
                vec![x, x * std::f64::consts::TAU]
            })
            .collect();
        let values: Vec<f64> = (0..120).map(|i| i as f64 / 119.0).collect();
        model
            .fit_value_batch(rows.iter().map(Vec::as_slice), &values)
            .unwrap();
        assert_eq!(model.observed(), 120);

        // Batched predictions are bit-identical to per-sample ones.
        let batched = model.predict_value_batch(rows.iter().map(Vec::as_slice));
        let serial: Vec<f64> = rows.iter().map(|r| model.predict_value(&r[..])).collect();
        assert_eq!(batched, serial);
        let encoded = model.encode_batch(rows.iter().map(Vec::as_slice));
        assert_eq!(model.predict_values_encoded(&encoded), serial);

        // The two-factor (scalar ⊗ angle) encoding tracks the identity.
        let mae = model
            .evaluate_mae(rows.iter().map(Vec::as_slice), &values)
            .unwrap();
        assert!(mae < 0.2, "train mae {mae}");

        // Batch fitting matches incremental fitting bit for bit.
        let mut incremental = Pipeline::builder(8_192)
            .seed(17)
            .regression(0.0, 1.0, 32)
            .encoder(Enc::record(vec![
                FieldSpec::scalar(0.0, 1.0),
                FieldSpec::angle(),
            ]))
            .build()
            .unwrap();
        for (row, &y) in rows.iter().zip(&values) {
            incremental.fit_value(&row[..], y).unwrap();
        }
        assert_eq!(
            incremental.predict_value_batch(rows.iter().map(Vec::as_slice)),
            batched
        );
    }

    #[test]
    fn task_mismatch_is_reported_not_misanswered() {
        let (hours, labels) = day_night();
        let mut classify = angle_model(8);
        classify.fit_batch(&hours, &labels).unwrap();
        assert!(matches!(
            classify.fit_value(&hours[0], 0.5),
            Err(HdcError::TaskMismatch {
                expected: "regression",
                found: "classification"
            })
        ));
        assert!(matches!(
            classify.fit_value_batch(&hours, &[0.0; 48]),
            Err(HdcError::TaskMismatch { .. })
        ));
        assert!(matches!(
            classify.evaluate_mae(&hours, &[0.0; 48]),
            Err(HdcError::TaskMismatch { .. })
        ));

        let mut regress = Pipeline::builder(1_024)
            .regression(0.0, 24.0, 24)
            .encoder(Enc::angle())
            .build()
            .unwrap();
        assert!(matches!(
            regress.fit(&hours[0], 0),
            Err(HdcError::TaskMismatch {
                expected: "classification",
                found: "regression"
            })
        ));
        assert!(matches!(
            regress.fit_batch(&hours, &labels),
            Err(HdcError::TaskMismatch { .. })
        ));
        assert!(matches!(
            regress.evaluate(&hours, &labels),
            Err(HdcError::TaskMismatch { .. })
        ));
        // Fallible paths reported the mismatch without corrupting state.
        regress.fit_value(&hours[0], 12.0).unwrap();
        assert_eq!(regress.observed(), 1);
    }

    #[test]
    #[should_panic(expected = "requires a regression pipeline")]
    fn predict_value_panics_on_classification() {
        let model = angle_model(9);
        let _ = model.predict_value(&Radians(0.1));
    }

    #[test]
    #[should_panic(expected = "requires a classification pipeline")]
    fn predict_panics_on_regression() {
        let model = Pipeline::builder(512)
            .regression(0.0, 1.0, 8)
            .encoder(Enc::angle())
            .build()
            .unwrap();
        let _ = model.predict(&Radians(0.1));
    }
}
