//! The unified `Pipeline`/`Model` API: one typed builder over basis, encoder
//! and learner, one object to fit and serve.
//!
//! Before this module, every classification workload hand-wired
//! `StdRng → BasisSet → Encoder → CentroidClassifier` with per-crate types
//! in exactly the right order. [`Pipeline::builder`] captures that wiring
//! once: pick a dimensionality, a seed, a [`Basis`] family and an [`Enc`]
//! encoder spec, and [`build`](ModelBuilder::build) yields a [`Model`] that
//! owns the whole stack behind an object-safe encoder seam
//! ([`DynEncoder`]), while the batched parallel paths from PR 2 keep doing
//! the work underneath.

use std::fmt;

use hdc_basis::BasisKind;
use hdc_core::{BinaryHypervector, HdcError, HvMut, HypervectorBatch, TieBreak};
use hdc_encode::{
    AngleEncoder, CategoricalEncoder, Encoder, FeatureRecordEncoder, FieldSpec, Radians,
    ScalarEncoder, SequenceEncoder,
};
use hdc_learn::{metrics, CentroidClassifier, CentroidTrainer};
use rand::{rngs::StdRng, SeedableRng};

/// The basis-hypervector family a pipeline quantizes through, with its size
/// `m` and (where applicable) the §5.2 randomness hyperparameter `r`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Basis {
    /// Uncorrelated random-hypervectors (paper §3.1).
    Random {
        /// Number of basis hypervectors.
        m: usize,
    },
    /// Interpolation-based level-hypervectors (paper §4.3).
    Level {
        /// Number of levels.
        m: usize,
        /// Randomness `r ∈ [0, 1]`; `0.0` is Algorithm 1.
        r: f64,
    },
    /// Circular-hypervectors (paper §5.1) — the wrap-correct choice for
    /// angles, hours, seasons and ring positions.
    Circular {
        /// Number of sectors.
        m: usize,
        /// Randomness `r ∈ [0, 1]`.
        r: f64,
    },
}

impl Basis {
    /// The [`BasisKind`] selector this maps onto.
    #[must_use]
    pub fn kind(self) -> BasisKind {
        match self {
            Basis::Random { .. } => BasisKind::Random,
            Basis::Level { r, .. } => BasisKind::Level { randomness: r },
            Basis::Circular { r, .. } => BasisKind::Circular { randomness: r },
        }
    }

    /// The basis size `m`.
    #[must_use]
    pub fn m(self) -> usize {
        match self {
            Basis::Random { m } | Basis::Level { m, .. } | Basis::Circular { m, .. } => m,
        }
    }
}

/// Object-safe seam over [`hdc_encode::Encoder`]: the two methods a
/// [`Model`] needs (`dim`, in-place `encode_into`), without the generic
/// `encode_batch` that keeps the full trait from being boxed. Every
/// `Encoder<X> + Send + Sync + Debug` implements it via the blanket impl,
/// so `Box<dyn DynEncoder<X>>` erases the concrete encoder type while the
/// batched fan-out is rebuilt on top (see [`Model::encode_batch`]).
pub trait DynEncoder<X: ?Sized>: Send + Sync + fmt::Debug {
    /// Dimensionality `d` of the produced hypervectors.
    fn dim(&self) -> usize;

    /// Encodes `input` into the provided row, overwriting its contents.
    fn encode_into(&self, input: &X, out: HvMut<'_>);
}

impl<X: ?Sized, E> DynEncoder<X> for E
where
    E: Encoder<X> + Send + Sync + fmt::Debug,
{
    fn dim(&self) -> usize {
        Encoder::dim(self)
    }

    fn encode_into(&self, input: &X, out: HvMut<'_>) {
        Encoder::encode_into(self, input, out);
    }
}

/// A buildable encoder specification: carries the configuration of one of
/// the workload encoders plus, at the type level, the input type `Input`
/// the finished [`Model`] will accept. Obtained from the [`Enc`]
/// constructors; consumed by [`ModelBuilder::build`].
pub trait EncoderSpec {
    /// The input type of the built encoder (and of the resulting model).
    type Input: ?Sized + Sync;

    /// Builds the encoder behind the [`DynEncoder`] seam.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError`] for invalid spec or basis parameters.
    fn build_encoder(
        self,
        dim: usize,
        basis: Basis,
        rng: &mut StdRng,
    ) -> Result<Box<dyn DynEncoder<Self::Input>>, HdcError>;

    /// The basis family used when the builder's
    /// [`basis`](PipelineBuilder::basis) was never called: each spec picks
    /// the family that is correct for its input structure (circular for
    /// angles, level for linear scalars, …), so a pipeline built with
    /// defaults never quantizes a linear range through a wrapping basis or
    /// vice versa.
    fn default_basis(&self) -> Basis {
        Basis::Circular { m: 16, r: 0.0 }
    }
}

/// Namespace of encoder-spec constructors, mirroring the encoder taxonomy
/// of `hdc-encode` (Aygun et al.'s survey): pick one per pipeline.
///
/// | Constructor | Model input | Backing encoder |
/// |---|---|---|
/// | [`Enc::scalar`] | `f64` | [`ScalarEncoder`] |
/// | [`Enc::angle`] | [`Radians`] | [`AngleEncoder`] |
/// | [`Enc::categorical`] | `usize` | [`CategoricalEncoder`] |
/// | [`Enc::sequence`] | `[usize]` | [`SequenceEncoder`] |
/// | [`Enc::record`] | `[f64]` | [`FeatureRecordEncoder`] |
pub struct Enc;

impl Enc {
    /// A scalar pipeline over `[low, high]`, quantized into the basis's `m`
    /// levels.
    #[must_use]
    pub fn scalar(low: f64, high: f64) -> ScalarSpec {
        ScalarSpec { low, high }
    }

    /// An angle pipeline over `[0, 2π)`, quantized into the basis's `m`
    /// sectors (wrap-correct with a circular basis).
    #[must_use]
    pub fn angle() -> AngleSpec {
        AngleSpec
    }

    /// A categorical pipeline over `n` symbols (always a random basis —
    /// symbols carry no ordinal structure; the pipeline basis is ignored).
    #[must_use]
    pub fn categorical(n: usize) -> CategoricalSpec {
        CategoricalSpec { n }
    }

    /// A sequence pipeline over an alphabet of `n` symbols (position-
    /// permuted random symbol hypervectors; the pipeline basis is ignored).
    #[must_use]
    pub fn sequence(n: usize) -> SequenceSpec {
        SequenceSpec { n }
    }

    /// A record pipeline over raw `f64` feature rows, one [`FieldSpec`] per
    /// position; scalar and angle fields quantize through the pipeline
    /// basis.
    #[must_use]
    pub fn record(fields: Vec<FieldSpec>) -> RecordSpec {
        RecordSpec { fields }
    }
}

/// Spec built by [`Enc::scalar`].
#[derive(Debug, Clone, Copy)]
pub struct ScalarSpec {
    low: f64,
    high: f64,
}

impl EncoderSpec for ScalarSpec {
    type Input = f64;

    fn build_encoder(
        self,
        dim: usize,
        basis: Basis,
        rng: &mut StdRng,
    ) -> Result<Box<dyn DynEncoder<f64>>, HdcError> {
        Ok(Box::new(ScalarEncoder::with_kind(
            self.low,
            self.high,
            basis.m(),
            dim,
            basis.kind(),
            rng,
        )?))
    }

    /// Linear data must not wrap: a level basis, so the interval's ends
    /// stay quasi-orthogonal.
    fn default_basis(&self) -> Basis {
        Basis::Level { m: 16, r: 0.0 }
    }
}

/// Spec built by [`Enc::angle`].
#[derive(Debug, Clone, Copy)]
pub struct AngleSpec;

impl EncoderSpec for AngleSpec {
    type Input = Radians;

    fn build_encoder(
        self,
        dim: usize,
        basis: Basis,
        rng: &mut StdRng,
    ) -> Result<Box<dyn DynEncoder<Radians>>, HdcError> {
        let set = basis.kind().build(basis.m(), dim, rng)?;
        Ok(Box::new(AngleEncoder::from_basis(set.as_ref())?))
    }
}

/// Spec built by [`Enc::categorical`].
#[derive(Debug, Clone, Copy)]
pub struct CategoricalSpec {
    n: usize,
}

impl EncoderSpec for CategoricalSpec {
    type Input = usize;

    fn build_encoder(
        self,
        dim: usize,
        _basis: Basis,
        rng: &mut StdRng,
    ) -> Result<Box<dyn DynEncoder<usize>>, HdcError> {
        Ok(Box::new(CategoricalEncoder::new(self.n, dim, rng)?))
    }
}

/// Spec built by [`Enc::sequence`].
#[derive(Debug, Clone, Copy)]
pub struct SequenceSpec {
    n: usize,
}

impl EncoderSpec for SequenceSpec {
    type Input = [usize];

    fn build_encoder(
        self,
        dim: usize,
        _basis: Basis,
        rng: &mut StdRng,
    ) -> Result<Box<dyn DynEncoder<[usize]>>, HdcError> {
        Ok(Box::new(SequenceEncoder::new(self.n, dim, rng)?))
    }
}

/// Spec built by [`Enc::record`].
#[derive(Debug, Clone)]
pub struct RecordSpec {
    fields: Vec<FieldSpec>,
}

impl EncoderSpec for RecordSpec {
    type Input = [f64];

    fn build_encoder(
        self,
        dim: usize,
        basis: Basis,
        rng: &mut StdRng,
    ) -> Result<Box<dyn DynEncoder<[f64]>>, HdcError> {
        Ok(Box::new(FeatureRecordEncoder::new(
            &self.fields,
            basis.m(),
            dim,
            basis.kind(),
            rng,
        )?))
    }
}

/// Entry point of the unified API: [`Pipeline::builder`] starts a typed
/// builder chain ending in a [`Model`].
///
/// ```
/// use hdc_serve::{Basis, Enc, Pipeline};
///
/// let mut model = Pipeline::builder(10_000)
///     .seed(7)
///     .classes(2)
///     .basis(Basis::Circular { m: 24, r: 0.0 })
///     .encoder(Enc::angle())
///     .build()?;
/// // Hours on the daily circle: morning (class 0) vs evening (class 1).
/// use hdc_serve::Radians;
/// let hours: Vec<Radians> = (0..24).map(|h| Radians::periodic(h as f64, 24.0)).collect();
/// let labels: Vec<usize> = (0..24).map(|h| usize::from(h >= 12)).collect();
/// model.fit_batch(&hours, &labels)?;
/// assert_eq!(model.predict(&Radians::periodic(9.0, 24.0)), 0);
/// assert_eq!(model.predict(&Radians::periodic(21.0, 24.0)), 1);
/// # Ok::<(), hdc_serve::HdcError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Pipeline;

impl Pipeline {
    /// Starts a builder for `dim`-bit pipelines. Defaults: seed `0`, two
    /// classes, and — unless [`basis`](PipelineBuilder::basis) is called —
    /// the encoder spec's own
    /// [`default_basis`](EncoderSpec::default_basis) (`m = 16`: level for
    /// scalars, circular otherwise), so defaults never quantize a linear
    /// range through a wrapping basis.
    #[must_use]
    pub fn builder(dim: usize) -> PipelineBuilder {
        PipelineBuilder {
            dim,
            seed: 0,
            basis: None,
            classes: 2,
        }
    }
}

/// The untyped half of the builder: dimensionality, seed, basis family and
/// class count. Calling [`encoder`](Self::encoder) fixes the input type and
/// moves to a [`ModelBuilder`].
#[derive(Debug, Clone, Copy)]
pub struct PipelineBuilder {
    dim: usize,
    seed: u64,
    basis: Option<Basis>,
    classes: usize,
}

impl PipelineBuilder {
    /// Seed of the pipeline's deterministic RNG (basis draws, keys).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The basis family scalar/angle/record encoders quantize through
    /// (overriding the spec's [`default_basis`](EncoderSpec::default_basis)).
    #[must_use]
    pub fn basis(mut self, basis: Basis) -> Self {
        self.basis = Some(basis);
        self
    }

    /// Number of classes of the centroid learner.
    #[must_use]
    pub fn classes(mut self, classes: usize) -> Self {
        self.classes = classes;
        self
    }

    /// Selects the encoder spec, fixing the model's input type.
    #[must_use]
    pub fn encoder<S: EncoderSpec>(self, spec: S) -> ModelBuilder<S> {
        ModelBuilder { base: self, spec }
    }
}

/// The typed half of the builder: everything is configured, only
/// [`build`](Self::build) is left.
#[derive(Debug, Clone)]
pub struct ModelBuilder<S> {
    base: PipelineBuilder,
    spec: S,
}

impl<S: EncoderSpec> ModelBuilder<S> {
    /// Builds the [`Model`]: seeds the RNG, constructs basis and encoder,
    /// and initializes an (untrained) centroid learner.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError`] for invalid dimension, class count, basis or
    /// encoder parameters.
    pub fn build(self) -> Result<Model<S::Input>, HdcError> {
        let PipelineBuilder {
            dim,
            seed,
            basis,
            classes,
        } = self.base;
        let basis = basis.unwrap_or_else(|| self.spec.default_basis());
        let mut rng = StdRng::seed_from_u64(seed);
        let encoder = self.spec.build_encoder(dim, basis, &mut rng)?;
        let trainer = CentroidTrainer::new(classes, dim)?;
        let classifier = trainer.finish_deterministic(TieBreak::Alternate);
        Ok(Model {
            dim,
            basis,
            encoder,
            trainer,
            classifier,
        })
    }
}

/// A complete HDC classification pipeline behind one object: basis-backed
/// encoder, centroid trainer and finalized classifier, with per-sample and
/// batched (parallel, bit-identical) forms of every stage.
///
/// Built by [`Pipeline::builder`]. `X` is the input type fixed by the
/// [`Enc`] spec (`f64`, [`Radians`], `usize`, `[usize]` or `[f64]`).
///
/// Training is incremental: every [`fit`](Self::fit)/[`fit_batch`](Self::fit_batch)
/// folds samples into the per-class accumulators and re-finalizes the
/// class-vectors with the deterministic
/// [`TieBreak::Alternate`](hdc_core::TieBreak) policy, so the same samples
/// always produce bit-identical class-vectors — the property sharded
/// serving's replicated classifiers rely on.
pub struct Model<X: ?Sized> {
    dim: usize,
    basis: Basis,
    encoder: Box<dyn DynEncoder<X>>,
    trainer: CentroidTrainer,
    classifier: CentroidClassifier,
}

impl<X: ?Sized> fmt::Debug for Model<X> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Model")
            .field("dim", &self.dim)
            .field("basis", &self.basis)
            .field("classes", &self.trainer.classes())
            .field("observed", &self.trainer.counts().iter().sum::<usize>())
            .field("encoder", &self.encoder)
            .finish()
    }
}

impl<X: ?Sized + Sync> Model<X> {
    /// Hypervector dimensionality `d`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.trainer.classes()
    }

    /// The basis family this pipeline was built with.
    #[must_use]
    pub fn basis(&self) -> Basis {
        self.basis
    }

    /// Number of training samples observed per class.
    #[must_use]
    pub fn counts(&self) -> &[usize] {
        self.trainer.counts()
    }

    /// The finalized classifier (the replicated state sharded serving
    /// copies onto every shard).
    #[must_use]
    pub fn classifier(&self) -> &CentroidClassifier {
        &self.classifier
    }

    /// Encodes one sample into an owned hypervector.
    #[must_use]
    pub fn encode(&self, input: &X) -> BinaryHypervector {
        let mut words = vec![0u64; self.dim.div_ceil(64)];
        self.encoder
            .encode_into(input, HvMut::new(self.dim, &mut words));
        BinaryHypervector::from_words(self.dim, words)
    }

    /// Encodes a batch of samples into one contiguous arena, one row per
    /// input in order, parallelized across the worker pool — bit-identical
    /// to per-sample [`encode`](Self::encode) (rows are independent).
    pub fn encode_batch<'a, I>(&self, inputs: I) -> HypervectorBatch
    where
        I: IntoIterator<Item = &'a X>,
        X: 'a,
    {
        let refs: Vec<&X> = inputs.into_iter().collect();
        self.encode_refs(&refs)
    }

    /// The shared parallel arena fill behind [`encode_batch`](Self::encode_batch):
    /// callers that must validate input counts first (against labels)
    /// collect the refs themselves, so validation failures cost nothing.
    fn encode_refs(&self, refs: &[&X]) -> HypervectorBatch {
        let mut batch = HypervectorBatch::zeros(self.dim, refs.len());
        if refs.is_empty() {
            return batch;
        }
        let rows_per_chunk = if refs.len() < minipool::MIN_PARALLEL_ITEMS {
            refs.len()
        } else {
            refs.len().div_ceil(minipool::max_threads())
        };
        let encoder = self.encoder.as_ref();
        let mut chunks: Vec<_> = batch.chunks_mut(rows_per_chunk).collect();
        minipool::par_fill_indexed(&mut chunks, |_, chunk| {
            for (row_index, row) in chunk.rows_mut() {
                encoder.encode_into(refs[row_index], row);
            }
        });
        batch
    }

    /// Checks an input count against its per-sample `labels` before any
    /// encoding work is spent.
    fn check_labelled(refs: &[&X], labels: &[usize]) -> Result<(), HdcError> {
        if refs.len() != labels.len() {
            return Err(HdcError::BatchLengthMismatch {
                rows: refs.len(),
                labels: labels.len(),
            });
        }
        Ok(())
    }

    /// Folds one labelled sample into the model and re-finalizes the
    /// class-vectors. For more than a handful of samples prefer
    /// [`fit_batch`](Self::fit_batch), which finalizes once per call.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::LabelOutOfRange`] for an unknown label.
    pub fn fit(&mut self, input: &X, label: usize) -> Result<(), HdcError> {
        let hv = self.encode(input);
        self.trainer.observe(&hv, label)?;
        self.refresh();
        Ok(())
    }

    /// Folds a batch of labelled samples into the model in one parallel
    /// encode + accumulate pass, then re-finalizes the class-vectors.
    /// Produces exactly the model repeated [`fit`](Self::fit) calls would.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::BatchLengthMismatch`] if `labels` does not match
    /// the number of inputs and [`HdcError::LabelOutOfRange`] for an
    /// unknown label (in which case nothing is accumulated).
    pub fn fit_batch<'a, I>(&mut self, inputs: I, labels: &[usize]) -> Result<(), HdcError>
    where
        I: IntoIterator<Item = &'a X>,
        X: 'a,
    {
        let refs: Vec<&X> = inputs.into_iter().collect();
        Self::check_labelled(&refs, labels)?;
        let batch = self.encode_refs(&refs);
        self.trainer.observe_batch(&batch, labels)?;
        self.refresh();
        Ok(())
    }

    fn refresh(&mut self) {
        self.classifier = self.trainer.finish_deterministic(TieBreak::Alternate);
    }

    /// Decomposes the model into the pieces a long-running runtime takes
    /// ownership of: the boxed encoder, the accumulated trainer state and
    /// the finalized classifier.
    pub(crate) fn into_parts(
        self,
    ) -> (
        usize,
        Box<dyn DynEncoder<X>>,
        CentroidTrainer,
        CentroidClassifier,
    ) {
        (self.dim, self.encoder, self.trainer, self.classifier)
    }

    /// Predicts the label of one sample.
    #[must_use]
    pub fn predict(&self, input: &X) -> usize {
        self.classifier.predict(&self.encode(input))
    }

    /// Predicts a batch of samples: parallel batched encode into one arena,
    /// then parallel nearest-class-vector search over its rows.
    /// Bit-identical to per-sample [`predict`](Self::predict).
    pub fn predict_batch<'a, I>(&self, inputs: I) -> Vec<usize>
    where
        I: IntoIterator<Item = &'a X>,
        X: 'a,
    {
        self.classifier.predict_rows(&self.encode_batch(inputs))
    }

    /// Predicts every row of an already encoded arena (the entry point
    /// sharded serving feeds routed query batches through).
    ///
    /// # Panics
    ///
    /// Panics if the batch's dimensionality differs from the model's.
    #[must_use]
    pub fn predict_encoded(&self, batch: &HypervectorBatch) -> Vec<usize> {
        self.classifier.predict_rows(batch)
    }

    /// Classification accuracy over a labelled evaluation set.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::BatchLengthMismatch`] if `labels` does not match
    /// the number of inputs and [`HdcError::EmptyInput`] for an empty set.
    pub fn evaluate<'a, I>(&self, inputs: I, labels: &[usize]) -> Result<f64, HdcError>
    where
        I: IntoIterator<Item = &'a X>,
        X: 'a,
    {
        let refs: Vec<&X> = inputs.into_iter().collect();
        Self::check_labelled(&refs, labels)?;
        if refs.is_empty() {
            return Err(HdcError::EmptyInput);
        }
        let batch = self.encode_refs(&refs);
        Ok(metrics::accuracy(
            &self.classifier.predict_rows(&batch),
            labels,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn angle_model(seed: u64) -> Model<Radians> {
        Pipeline::builder(4_096)
            .seed(seed)
            .classes(2)
            .basis(Basis::Circular { m: 24, r: 0.0 })
            .encoder(Enc::angle())
            .build()
            .unwrap()
    }

    fn day_night() -> (Vec<Radians>, Vec<usize>) {
        let hours: Vec<Radians> = (0..48)
            .map(|i| Radians::periodic(i as f64 / 2.0, 24.0))
            .collect();
        let labels: Vec<usize> = (0..48).map(|i| usize::from(i >= 24)).collect();
        (hours, labels)
    }

    #[test]
    fn builder_is_deterministic_per_seed() {
        let (hours, labels) = day_night();
        let mut a = angle_model(3);
        let mut b = angle_model(3);
        a.fit_batch(&hours, &labels).unwrap();
        b.fit_batch(&hours, &labels).unwrap();
        assert_eq!(a.classifier(), b.classifier());
        let mut c = angle_model(4);
        c.fit_batch(&hours, &labels).unwrap();
        assert_ne!(a.classifier(), c.classifier());
    }

    #[test]
    fn fit_batch_matches_incremental_fit() {
        let (hours, labels) = day_night();
        let mut batched = angle_model(1);
        batched.fit_batch(&hours, &labels).unwrap();
        let mut incremental = angle_model(1);
        for (h, &l) in hours.iter().zip(&labels) {
            incremental.fit(h, l).unwrap();
        }
        assert_eq!(batched.classifier(), incremental.classifier());
        assert_eq!(batched.counts(), &[24, 24]);
    }

    #[test]
    fn predict_batch_matches_per_sample() {
        let (hours, labels) = day_night();
        let mut model = angle_model(2);
        model.fit_batch(&hours, &labels).unwrap();
        let batched = model.predict_batch(&hours);
        let serial: Vec<usize> = hours.iter().map(|h| model.predict(h)).collect();
        assert_eq!(batched, serial);
        let encoded = model.encode_batch(&hours);
        assert_eq!(model.predict_encoded(&encoded), serial);
        let accuracy = model.evaluate(&hours, &labels).unwrap();
        assert!(accuracy > 0.9, "train accuracy {accuracy}");
    }

    #[test]
    fn scalar_and_categorical_and_sequence_pipelines_build() {
        let mut scalar = Pipeline::builder(2_048)
            .basis(Basis::Level { m: 16, r: 0.0 })
            .encoder(Enc::scalar(0.0, 1.0))
            .build()
            .unwrap();
        let xs = [0.1f64, 0.2, 0.8, 0.9];
        scalar.fit_batch(&xs, &[0, 0, 1, 1]).unwrap();
        assert_eq!(scalar.predict(&0.15), 0);
        assert_eq!(scalar.predict(&0.85), 1);

        let mut cat = Pipeline::builder(2_048)
            .classes(3)
            .encoder(Enc::categorical(9))
            .build()
            .unwrap();
        let symbols: Vec<usize> = (0..9).collect();
        let labels: Vec<usize> = symbols.iter().map(|s| s % 3).collect();
        cat.fit_batch(&symbols, &labels).unwrap();
        assert_eq!(cat.predict(&4), 1);

        let mut seq = Pipeline::builder(2_048)
            .encoder(Enc::sequence(5))
            .build()
            .unwrap();
        let seqs: Vec<Vec<usize>> =
            vec![vec![0, 1, 2], vec![0, 2, 1], vec![4, 3, 2], vec![3, 4, 2]];
        seq.fit_batch(seqs.iter().map(Vec::as_slice), &[0, 0, 1, 1])
            .unwrap();
        assert_eq!(seq.predict(&[0usize, 1, 2][..]), 0);
    }

    #[test]
    fn default_basis_is_per_spec() {
        // A scalar pipeline built without .basis() must not quantize its
        // linear range through a wrapping basis: the interval's ends stay
        // quasi-orthogonal under the Level default.
        let model = Pipeline::builder(4_096)
            .encoder(Enc::scalar(0.0, 100.0))
            .build()
            .unwrap();
        assert_eq!(model.basis(), Basis::Level { m: 16, r: 0.0 });
        let wrap = model.encode(&0.0).normalized_hamming(&model.encode(&100.0));
        assert!((wrap - 0.5).abs() < 0.06, "scalar ends wrapped: {wrap}");
        // Angle pipelines keep the circular default, and an explicit basis
        // always wins.
        let angle = Pipeline::builder(1_024)
            .encoder(Enc::angle())
            .build()
            .unwrap();
        assert_eq!(angle.basis(), Basis::Circular { m: 16, r: 0.0 });
        let explicit = Pipeline::builder(1_024)
            .basis(Basis::Random { m: 8 })
            .encoder(Enc::scalar(0.0, 1.0))
            .build()
            .unwrap();
        assert_eq!(explicit.basis(), Basis::Random { m: 8 });
    }

    #[test]
    fn record_pipeline_classifies_feature_rows() {
        let mut model = Pipeline::builder(4_096)
            .seed(5)
            .classes(2)
            .basis(Basis::Circular { m: 16, r: 0.0 })
            .encoder(Enc::record(vec![
                FieldSpec::scalar(0.0, 1.0),
                FieldSpec::angle(),
            ]))
            .build()
            .unwrap();
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                if i % 2 == 0 {
                    vec![0.1 + 0.01 * i as f64 / 20.0, 0.3]
                } else {
                    vec![0.9 - 0.01 * i as f64 / 20.0, 3.1]
                }
            })
            .collect();
        let labels: Vec<usize> = (0..20).map(|i| i % 2).collect();
        model
            .fit_batch(rows.iter().map(Vec::as_slice), &labels)
            .unwrap();
        assert_eq!(model.predict(&[0.12, 0.25][..]), 0);
        assert_eq!(model.predict(&[0.88, 3.2][..]), 1);
        assert!(format!("{model:?}").contains("Model"));
    }

    #[test]
    fn build_rejects_invalid_parameters() {
        assert!(Pipeline::builder(0).encoder(Enc::angle()).build().is_err());
        assert!(Pipeline::builder(64)
            .classes(0)
            .encoder(Enc::angle())
            .build()
            .is_err());
        assert!(Pipeline::builder(64)
            .basis(Basis::Circular { m: 8, r: 1.5 })
            .encoder(Enc::angle())
            .build()
            .is_err());
        assert!(Pipeline::builder(64)
            .encoder(Enc::scalar(1.0, 0.0))
            .build()
            .is_err());
        assert!(Pipeline::builder(64)
            .encoder(Enc::record(vec![]))
            .build()
            .is_err());
    }

    #[test]
    fn fit_errors_leave_model_usable() {
        let (hours, labels) = day_night();
        let mut model = angle_model(6);
        model.fit_batch(&hours, &labels).unwrap();
        let before = model.classifier().clone();
        assert!(matches!(
            model.fit_batch(&hours, &labels[..10]),
            Err(HdcError::BatchLengthMismatch { .. })
        ));
        assert!(matches!(
            model.fit(&hours[0], 7),
            Err(HdcError::LabelOutOfRange { .. })
        ));
        assert_eq!(model.classifier(), &before);
        assert!(matches!(
            model.evaluate(&hours[..2], &labels[..3]),
            Err(HdcError::BatchLengthMismatch { .. })
        ));
        assert!(matches!(
            model.evaluate(&[], &[]),
            Err(HdcError::EmptyInput)
        ));
    }
}
