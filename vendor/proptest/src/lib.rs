//! Vendored, API-compatible subset of [`proptest`](https://docs.rs/proptest).
//!
//! The build environment has no network access to a crates.io mirror, so
//! this workspace vendors the slice of proptest its tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]` inner
//! attribute), [`ProptestConfig::with_cases`], range strategies over
//! integers and floats, [`collection::vec`], and the
//! [`prop_assert!`]/[`prop_assert_eq!`] assertion macros.
//!
//! Each property runs a fixed number of deterministic cases (seeded from
//! the test name and case index). Unlike upstream there is no shrinking:
//! a failing case reports its generated inputs' case number and message
//! and panics immediately. That is a deliberate simplification — the
//! workspace's properties are statistical laws over seeds, where
//! shrinking adds little.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    //! Value-generation strategies (reduced surface).

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of values the strategy produces.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.random_range(self.clone())
        }
    }
}

pub mod collection {
    //! Strategies for collections.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing `Vec`s whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Creates a strategy for `Vec`s of `size.start..size.end` elements.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-property configuration. Mirror of `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// 32 cases — smaller than upstream's 256 to keep the workspace's
    /// statistics-heavy suites fast in CI.
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// Deterministic RNG for one generated case of one property.
#[doc(hidden)]
pub fn rng_for_case(property: &str, case: u32) -> StdRng {
    let mut hasher = DefaultHasher::new();
    property.hash(&mut hasher);
    case.hash(&mut hasher);
    StdRng::seed_from_u64(hasher.finish())
}

/// Declares property tests. Reduced mirror of `proptest::proptest!`:
/// supports an optional `#![proptest_config(expr)]` header and any number
/// of `#[test] fn name(arg in strategy, ..) { .. }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $( $(#[$attr:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut proptest_rng = $crate::rng_for_case(stringify!($name), case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut proptest_rng);
                    )*
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!("property {} failed at case {}: {}", stringify!($name), case, message);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (with an optional formatted message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left != right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if left != right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                ::std::format!($($fmt)+),
                left,
                right,
            ));
        }
    }};
}

pub mod prelude {
    //! Glob-import surface: `use proptest::prelude::*;`.
    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}
