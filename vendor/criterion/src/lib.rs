//! Vendored, API-compatible subset of [`criterion`](https://docs.rs/criterion).
//!
//! The build environment has no network access to a crates.io mirror, so
//! this workspace vendors the slice of criterion its benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`] / [`BenchmarkGroup::sample_size`],
//! [`BenchmarkId`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Timing is a simple adaptive loop (warm-up, then enough
//! iterations to cover a fixed measurement window) reporting mean
//! nanoseconds per iteration — no statistics, plots or baselines. Swapping
//! back to the registry crate restores all of that without touching the
//! bench sources.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendered with `Display`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Conversion into a printable benchmark identifier; lets the same
/// `bench_function` accept both `&str` and [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Renders the identifier.
    fn into_id_string(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id_string(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id_string(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id_string(self) -> String {
        self.text
    }
}

/// Passed to every benchmark closure; [`Bencher::iter`] runs and times the
/// workload.
pub struct Bencher {
    measured: Option<Duration>,
    iterations: u64,
}

impl Bencher {
    /// Times `routine`, storing the mean duration per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up, and a first estimate of the per-iteration cost.
        let warmup_start = Instant::now();
        black_box(routine());
        let once = warmup_start.elapsed().max(Duration::from_nanos(1));

        // Enough iterations to fill the measurement window, bounded so a
        // slow workload still finishes promptly.
        const WINDOW: Duration = Duration::from_millis(50);
        let iterations = (WINDOW.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        let start = Instant::now();
        for _ in 0..iterations {
            black_box(routine());
        }
        self.measured = Some(start.elapsed() / u32::try_from(iterations).unwrap_or(u32::MAX));
        self.iterations = iterations;
    }
}

/// The benchmark driver. Mirror of `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_one(&id.into_id_string(), f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the vendored timer sizes its own
    /// iteration counts, so the value is not used.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into_id_string()), f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |bencher| f(bencher, input))
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut bencher = Bencher {
        measured: None,
        iterations: 0,
    };
    f(&mut bencher);
    match bencher.measured {
        Some(per_iter) => {
            println!(
                "{id:<56} {:>12.1} ns/iter ({} iters)",
                per_iter.as_nanos() as f64,
                bencher.iterations
            );
        }
        None => println!("{id:<56} (no measurement: Bencher::iter never called)"),
    }
}

/// Bundles benchmark functions into one runnable group function. Reduced
/// mirror of `criterion::criterion_group!` (plain form only).
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates the benchmark binary's `main`, running each group. Mirror of
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
