//! Minimal scoped data-parallel helpers for the batched execution layer.
//!
//! The build environment has no network access to a crates.io mirror, so
//! instead of `rayon` this workspace vendors the thin slice of data
//! parallelism its batch APIs need: fork–join over index ranges, slices and
//! mutable chunks, built directly on [`std::thread::scope`]. There is no
//! persistent pool, no work stealing and no `unsafe` — each call spawns at
//! most [`max_threads`] scoped workers over statically partitioned chunks,
//! which is the right shape for the workspace's embarrassingly parallel
//! workloads (per-row encoding, per-query similarity search, per-level basis
//! interpolation) where every chunk costs roughly the same.
//!
//! Every helper is **deterministic**: the partitioning depends only on the
//! input length and thread count, workers write disjoint output slots, and
//! results are returned in input order — so parallel output is bit-identical
//! to the serial loop it replaces, regardless of scheduling.
//!
//! The worker count comes from [`std::thread::available_parallelism`] and
//! can be overridden (e.g. pinned to 1 in CI) with the `MINIPOOL_THREADS`
//! environment variable.
//!
//! ```
//! let squares = minipool::par_map_indexed(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;

/// Advisory minimum item count before fanning out when each item costs on
/// the order of a microsecond (one hypervector row op): below this, thread
/// spawn/join overhead (tens of microseconds per worker) outweighs the
/// work, so call sites should run their serial loop instead.
///
/// The helpers do **not** apply this automatically — some callers pass a
/// handful of items that each represent a large chunk of work (e.g. one
/// arena block per worker), where fanning out 2 items is exactly right.
pub const MIN_PARALLEL_ITEMS: usize = 32;

/// The number of worker threads the helpers fan out to: the value of the
/// `MINIPOOL_THREADS` environment variable if set and positive, otherwise
/// [`std::thread::available_parallelism`] (1 if that is unavailable).
#[must_use]
pub fn max_threads() -> usize {
    if let Ok(value) = std::env::var("MINIPOOL_THREADS") {
        if let Ok(n) = value.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Splits `len` items into at most `workers` contiguous chunk lengths whose
/// sum is `len`, front-loading the remainder so lengths differ by at most 1.
fn chunk_lengths(len: usize, workers: usize) -> Vec<usize> {
    let workers = workers.clamp(1, len.max(1));
    let base = len / workers;
    let extra = len % workers;
    (0..workers)
        .map(|w| base + usize::from(w < extra))
        .filter(|&l| l > 0)
        .collect()
}

/// Maps `f` over a slice in parallel, returning results in input order.
///
/// `f` is called exactly once per element with `(index, &item)`. The output
/// is bit-identical to `items.iter().enumerate().map(..).collect()`.
pub fn par_map_indexed<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_generate(items.len(), |i| f(i, &items[i]))
}

/// Builds a `Vec` of length `len` by evaluating `f(index)` in parallel.
///
/// Order-preserving and deterministic: slot `i` always holds `f(i)`. Each
/// worker collects its contiguous range into its own `Vec` and the partial
/// vectors are concatenated in range order — no intermediate full-size
/// scratch buffer.
pub fn par_generate<U, F>(len: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    par_fold_ranges(
        len,
        |range| range.map(&f).collect::<Vec<U>>(),
        |mut acc, mut next| {
            acc.append(&mut next);
            acc
        },
    )
    .unwrap_or_default()
}

/// Runs `f(index, &mut item)` over every element of `data` in parallel,
/// partitioning the slice into contiguous per-worker chunks.
pub fn par_fill_indexed<T, F>(data: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let len = data.len();
    let lengths = chunk_lengths(len, max_threads());
    if len == 0 {
        return;
    }
    if lengths.len() <= 1 {
        for (i, item) in data.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = data;
        let mut start = 0;
        for length in lengths {
            let (head, tail) = rest.split_at_mut(length);
            rest = tail;
            let base = start;
            start += length;
            scope.spawn(move || {
                for (offset, item) in head.iter_mut().enumerate() {
                    f(base + offset, item);
                }
            });
        }
    });
}

/// Folds a partition of `0..len` in parallel and merges the per-worker
/// results: each worker runs `fold(range)` on one contiguous range, and the
/// partial results are `merge`d **in range order**, so any merge that is
/// associative over concatenated ranges (sums, per-class accumulators,
/// ordered concatenation) reproduces the serial result exactly.
pub fn par_fold_ranges<A, F, M>(len: usize, fold: F, mut merge: M) -> Option<A>
where
    A: Send,
    F: Fn(std::ops::Range<usize>) -> A + Sync,
    M: FnMut(A, A) -> A,
{
    let lengths = chunk_lengths(len, max_threads());
    if len == 0 {
        return None;
    }
    if lengths.len() <= 1 {
        return Some(fold(0..len));
    }
    let partials: Vec<A> = std::thread::scope(|scope| {
        let fold = &fold;
        let mut handles = Vec::with_capacity(lengths.len());
        let mut start = 0;
        for length in lengths {
            let range = start..start + length;
            start = range.end;
            handles.push(scope.spawn(move || fold(range)));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("minipool worker panicked"))
            .collect()
    });
    let mut iter = partials.into_iter();
    let first = iter.next()?;
    Some(iter.fold(first, &mut merge))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_lengths_cover_exactly() {
        for len in [0usize, 1, 2, 7, 64, 1000] {
            for workers in [1usize, 2, 3, 8, 200] {
                let lengths = chunk_lengths(len, workers);
                assert_eq!(lengths.iter().sum::<usize>(), len, "len={len} w={workers}");
                assert!(lengths.iter().all(|&l| l > 0) || len == 0);
                if len > 0 {
                    let min = lengths.iter().min().unwrap();
                    let max = lengths.iter().max().unwrap();
                    assert!(max - min <= 1, "uneven split for len={len} w={workers}");
                }
            }
        }
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..997).collect();
        let doubled = par_map_indexed(&items, |i, &x| {
            assert_eq!(i, x);
            2 * x
        });
        assert_eq!(doubled, items.iter().map(|&x| 2 * x).collect::<Vec<_>>());
    }

    #[test]
    fn par_generate_matches_serial() {
        assert_eq!(
            par_generate(10, |i| i * i),
            (0..10).map(|i| i * i).collect::<Vec<_>>()
        );
        assert!(par_generate(0, |i| i).is_empty());
    }

    #[test]
    fn par_fill_visits_every_slot_once() {
        let mut data = vec![0usize; 313];
        par_fill_indexed(&mut data, |i, slot| *slot = i + 1);
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i + 1);
        }
    }

    #[test]
    fn par_fold_sums_in_order() {
        let total = par_fold_ranges(
            1_000,
            |range| range.map(|i| i as u64).sum::<u64>(),
            |a, b| a + b,
        );
        assert_eq!(total, Some(499_500));
        assert_eq!(par_fold_ranges(0, |_| 0u64, |a, b| a + b), None);
        // Order-sensitive merge (concatenation) still reproduces the serial
        // result because partials merge in range order.
        let concat = par_fold_ranges(
            26,
            |range| range.map(|i| (b'a' + i as u8) as char).collect::<String>(),
            |mut a, b| {
                a.push_str(&b);
                a
            },
        );
        assert_eq!(concat.as_deref(), Some("abcdefghijklmnopqrstuvwxyz"));
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }
}
