//! Vendored, API-compatible subset of [`rand` 0.9](https://docs.rs/rand/0.9).
//!
//! The build environment has no network access to a crates.io mirror, so
//! this workspace vendors the exact slice of the rand 0.9 surface its code
//! uses: the [`Rng`] extension trait (`random`, `random_bool`,
//! `random_range`), [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom`]. The generator behind [`rngs::StdRng`] is
//! xoshiro256++ seeded through SplitMix64 — deterministic, high quality,
//! and more than adequate for the statistical tests in this workspace —
//! though its exact stream differs from upstream `StdRng` (ChaCha12), so
//! seeds do not reproduce upstream sequences.
//!
//! Swapping back to the registry crate is a one-line change in the root
//! manifest; no workspace code needs to change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words. Mirror of `rand_core::RngCore`,
/// reduced to what this workspace consumes.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
}

/// Types that can be sampled uniformly from an RNG's raw output, i.e. the
/// types usable with [`Rng::random`]. Mirror of sampling from rand's
/// `StandardUniform` distribution.
pub trait UniformSampled: Sized {
    /// Draws one uniformly distributed value.
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_uniform_sampled_int {
    ($($t:ty),*) => {$(
        impl UniformSampled for $t {
            fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_uniform_sampled_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSampled for bool {
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl UniformSampled for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSampled for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::random_range`] can sample from. Mirror of
/// `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform u64 in `[0, span)` via Lemire's widening-multiply reduction.
fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

// `$u` is `$t`'s same-width unsigned counterpart: the span must pass
// through it before widening to u64, otherwise sub-64-bit signed spans
// sign-extend (e.g. -100i8..100 has span 200, which wraps to -56i8 and
// would widen to 2^64 - 56) and samples escape the range.
macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add(sample_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = end.wrapping_sub(start) as $u as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(sample_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // `start + u * (end - start)` can round up to exactly `end`;
        // resample to keep the half-open contract (u = 0 yields `start`,
        // so this terminates with probability 1).
        loop {
            let u = f64::uniform_sample(rng);
            let value = self.start + u * (self.end - self.start);
            if value < self.end {
                return value;
            }
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        let u = f64::uniform_sample(rng);
        start + u * (end - start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        // See the f64 impl: guard the half-open contract against rounding.
        loop {
            let u = f32::uniform_sample(rng);
            let value = self.start + u * (self.end - self.start);
            if value < self.end {
                return value;
            }
        }
    }
}

/// User-facing extension methods over any [`RngCore`]. Mirror of
/// `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniformly random value of `T` (full range for integers, `[0, 1)`
    /// for floats).
    fn random<T: UniformSampled>(&mut self) -> T {
        T::uniform_sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        f64::uniform_sample(self) < p
    }

    /// Uniformly random value in `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of RNGs from seeds. Mirror of
/// `rand::SeedableRng`, reduced to the `seed_from_u64` entry point this
/// workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64.
    ///
    /// Upstream rand's `StdRng` is ChaCha12; this vendored stand-in keeps
    /// the type name and the `seed_from_u64` contract (same seed, same
    /// stream) but not upstream's exact output sequence.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, 2019).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers. Mirror of `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices. Mirror of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random reference to one element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.random::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.random::<u64>()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.random::<u64>());
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| {
                let x: f64 = rng.random();
                assert!((0.0..1.0).contains(&x));
                x
            })
            .sum::<f64>()
            / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let i = rng.random_range(3usize..17);
            assert!((3..17).contains(&i));
            let x = rng.random_range(-2.5f64..4.5);
            assert!((-2.5..4.5).contains(&x));
            let s = rng.random_range(-8i64..=8);
            assert!((-8..=8).contains(&s));
        }
    }

    #[test]
    fn random_range_signed_sub_64_bit_spans_do_not_sign_extend() {
        // Regression: the span of -100i8..100 (200) must widen through u8,
        // not sign-extend through i8, or ~22% of samples escape the range.
        let mut rng = StdRng::seed_from_u64(19);
        for _ in 0..10_000 {
            let x = rng.random_range(-100i8..100);
            assert!((-100..100).contains(&x), "x = {x}");
            let y = rng.random_range(-30_000i16..=30_000);
            assert!((-30_000..=30_000).contains(&y), "y = {y}");
        }
    }

    #[test]
    fn random_range_float_excludes_upper_bound() {
        // Regression: rounding in start + u * (end - start) must never
        // surface the excluded bound of a half-open range.
        let mut rng = StdRng::seed_from_u64(23);
        let end = std::f64::consts::PI / 49.0;
        for _ in 0..100_000 {
            let x = rng.random_range(0.0..end);
            assert!(x < end, "x = {x} reached the excluded bound");
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..50_000).filter(|_| rng.random_bool(0.25)).count();
        let rate = hits as f64 / 50_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left 100 elements in order");
    }
}
