//! A multi-process shard cluster over loopback TCP — and proof that the
//! routing tier never changes an answer.
//!
//! Three shard `Runtime`s are spawned behind real framed-TCP servers
//! (the same wiring `hdc-cluster shard` runs as separate OS processes),
//! a [`ClusterRouter`] routes keys to them over the consistent-hash
//! ring, and every prediction is asserted **bit-identical** to both the
//! unsharded [`Model`] and the in-process [`ShardedModel`] — for
//! classification and regression, before and after a shard leaves and a
//! blank replacement joins warm via snapshot streaming.
//!
//! Run with `cargo run --example shard_cluster`.

use std::collections::BTreeMap;

use hdc::serve::Radians;
use hdc::{
    Basis, BinaryHypervector, ClusterRouter, Enc, HdcError, Model, Pipeline, RemoteShard,
    RingConfig, Runtime, RuntimeConfig, Server, ShardBackend, ShardedModel,
};

const DIM: usize = 2_048;
const RING_SEED: u64 = 0;

fn trained_day_night(seed: u64) -> Result<Model<Radians>, HdcError> {
    let mut model = Pipeline::builder(DIM)
        .seed(seed)
        .classes(2)
        .basis(Basis::Circular { m: 24, r: 0.0 })
        .encoder(Enc::angle())
        .build()?;
    let hours: Vec<Radians> = (0..96)
        .map(|i| Radians::periodic(f64::from(i) / 4.0, 24.0))
        .collect();
    let labels: Vec<usize> = (0..96).map(|i| usize::from(i >= 48)).collect();
    model.fit_batch(&hours, &labels)?;
    Ok(model)
}

fn trained_hour_regressor(seed: u64) -> Result<Model<Radians>, HdcError> {
    let mut model = Pipeline::builder(DIM)
        .seed(seed)
        .regression(0.0, 24.0, 24)
        .basis(Basis::Circular { m: 24, r: 0.0 })
        .encoder(Enc::angle())
        .build()?;
    let hours: Vec<Radians> = (0..96)
        .map(|i| Radians::periodic(f64::from(i) / 4.0, 24.0))
        .collect();
    let values: Vec<f64> = (0..96).map(|i| f64::from(i) / 4.0).collect();
    model.fit_value_batch(&hours, &values)?;
    Ok(model)
}

/// One "shard process": a runtime rebuilt bit-identically from the
/// trained model's snapshot, behind its own loopback TCP server.
fn spawn_shard(model: &Model<Radians>, name: &str) -> Result<(Runtime<Radians>, Server), HdcError> {
    let replica = Pipeline::from_snapshot::<Radians>(&model.snapshot())?;
    let config = RuntimeConfig {
        name: name.to_owned(),
        ..RuntimeConfig::default()
    };
    let runtime = Runtime::spawn(replica, config)?;
    let server = Server::spawn("127.0.0.1:0", runtime.handle())
        .map_err(|e| HdcError::Transport(e.to_string()))?;
    Ok((runtime, server))
}

fn connect(server: &Server) -> Result<Box<dyn ShardBackend>, HdcError> {
    Ok(Box::new(RemoteShard::connect(
        &server.local_addr().to_string(),
    )?))
}

fn main() -> Result<(), HdcError> {
    // ---- Classification cluster -------------------------------------
    let model = trained_day_night(42)?;
    let inputs: Vec<Radians> = (0..200).map(|i| Radians(f64::from(i) * 0.031)).collect();
    let queries = model.encode_batch(&inputs);
    let expected = model.predict_encoded(&queries);
    let keys: Vec<String> = (0..inputs.len()).map(|i| format!("user-{i}")).collect();
    let pairs: Vec<(String, BinaryHypervector)> = keys
        .iter()
        .cloned()
        .zip(queries.rows().map(|row| row.to_hypervector()))
        .collect();

    // The in-process reference fleet the cluster must agree with.
    let fleet: ShardedModel<String> = ShardedModel::from_model(&model, 3, RING_SEED)?;
    assert_eq!(fleet.predict_batch(&keys, &queries)?, expected);

    // Three shard runtimes behind real TCP servers, one router over them.
    let mut shards = vec![
        spawn_shard(&model, "shard-0")?,
        spawn_shard(&model, "shard-1")?,
        spawn_shard(&model, "shard-2")?,
    ];
    let backends = shards
        .iter()
        .map(|(_, server)| connect(server))
        .collect::<Result<Vec<_>, _>>()?;
    let mut router = ClusterRouter::new(backends, RingConfig::default(), RING_SEED)?;

    // Bit-identity, and routing parity with the in-process ring.
    let served = router.predict_batch(&pairs)?;
    assert_eq!(
        served.iter().map(|p| p.label).collect::<Vec<_>>(),
        expected,
        "cluster predictions must be bit-identical to the unsharded model"
    );
    for key in &keys {
        assert_eq!(router.shard_of(key), fleet.shard_of(key));
    }
    println!(
        "cluster of {} shards: {} predictions bit-identical to the unsharded model",
        router.shard_count(),
        pairs.len()
    );

    // Store every key, then look at the balance.
    for (key, hv) in &pairs {
        router.insert(key, hv)?;
    }
    let loads: BTreeMap<u64, u64> = router
        .cluster_stats()?
        .shard_loads
        .iter()
        .copied()
        .collect();
    println!("item-memory balance over the ring: {loads:?}");

    // ---- Churn: one shard leaves, a blank replacement joins warm ----
    let (removed, drained) = router.leave(1)?;
    assert!(removed);
    let (_, old_server) = shards.remove(1);
    old_server.shutdown();
    println!("shard 1 left; {drained} entries drained onto the survivors");

    // The replacement is *blank*: same spec, zero observations. The warm
    // join streams it a donor trainer state plus the entries the grown
    // ring assigns to it.
    let blank = Pipeline::builder(DIM)
        .seed(42)
        .classes(2)
        .basis(Basis::Circular { m: 24, r: 0.0 })
        .encoder(Enc::angle())
        .build()?;
    let replacement = Runtime::spawn(
        blank,
        RuntimeConfig {
            name: "shard-3".to_owned(),
            ..RuntimeConfig::default()
        },
    )?;
    let replacement_server = Server::spawn("127.0.0.1:0", replacement.handle())
        .map_err(|e| HdcError::Transport(e.to_string()))?;
    let (id, moved) = router.join(connect(&replacement_server)?)?;
    println!("blank shard joined warm as id {id}; {moved} entries streamed to it");
    shards.push((replacement, replacement_server));

    // The reference fleet replays the same membership history; routing
    // and answers still agree bit-for-bit — including on keys now owned
    // by the shard that never saw training.
    let mut fleet = fleet;
    assert!(fleet.remove_shard(1));
    assert_eq!(fleet.add_shard(), 3);
    for key in &keys {
        assert_eq!(router.shard_of(key), fleet.shard_of(key));
    }
    let served = router.predict_batch(&pairs)?;
    assert_eq!(
        served.iter().map(|p| p.label).collect::<Vec<_>>(),
        expected,
        "bit-identity must survive shard churn"
    );
    let stats = router.cluster_stats()?;
    assert_eq!(
        stats.keys as usize,
        pairs.len(),
        "no item lost in the churn"
    );
    println!(
        "after churn: {} predictions still bit-identical, all {} items survived",
        pairs.len(),
        stats.keys
    );
    for (runtime, server) in shards {
        server.shutdown();
        runtime.shutdown();
    }

    // ---- Regression cluster -----------------------------------------
    let model = trained_hour_regressor(7)?;
    let queries = model.encode_batch(&inputs);
    let expected = model.predict_values_encoded(&queries);
    let pairs: Vec<(String, BinaryHypervector)> = keys
        .iter()
        .cloned()
        .zip(queries.rows().map(|row| row.to_hypervector()))
        .collect();
    let shards = vec![
        spawn_shard(&model, "reg-0")?,
        spawn_shard(&model, "reg-1")?,
        spawn_shard(&model, "reg-2")?,
    ];
    let backends = shards
        .iter()
        .map(|(_, server)| connect(server))
        .collect::<Result<Vec<_>, _>>()?;
    let mut router = ClusterRouter::new(backends, RingConfig::default(), RING_SEED)?;
    let served = router.predict_value_batch(&pairs)?;
    assert_eq!(
        served.iter().map(|p| p.value).collect::<Vec<_>>(),
        expected,
        "regression cluster must serve bit-identical f64s"
    );
    println!(
        "regression cluster of {} shards: {} served values bit-identical to the unsharded model",
        router.shard_count(),
        pairs.len()
    );
    for (runtime, server) in shards {
        server.shutdown();
        runtime.shutdown();
    }
    Ok(())
}
