//! Sharded serving end to end: one `Pipeline`-built model, replicated
//! class vectors, item memories partitioned over the `hdc-hash` ring, and
//! batched keyed prediction that stays **bit-identical** under shard churn.
//!
//! The demo trains a temperature-band classifier on the Beijing surrogate's
//! daily circle, then serves a keyed query batch from fleets of 1–8 shards,
//! verifying every answer against the unsharded model, and finally walks
//! through the graceful-degradation story: adding and removing shards only
//! remaps the expected `1/n` slice of keys.
//!
//! ```text
//! cargo run --release --example sharded_serving
//! ```

use hdc::datasets::beijing::{self, BeijingConfig, DAYS_PER_YEAR};
use hdc::serve::Radians;
use hdc::{Basis, Enc, HdcError, Pipeline, ShardedModel};

fn main() -> Result<(), HdcError> {
    // --- Train one model through the builder. ---------------------------
    let config = BeijingConfig::default();
    let data = beijing::generate(&config);
    let (train, test) = data.temporal_split(0.7);
    let (min_t, max_t) = data.temperature_range();
    let band = |t: f64| -> usize {
        let step = (max_t - min_t) / 3.0;
        (((t - min_t) / step) as usize).min(2)
    };

    let mut model = Pipeline::builder(10_000)
        .seed(42)
        .classes(3)
        .basis(Basis::Circular { m: 73, r: 0.01 })
        .encoder(Enc::angle())
        .build()?;
    let encode_day = |day: f64| Radians::periodic(day, DAYS_PER_YEAR);
    let days: Vec<Radians> = train.iter().map(|s| encode_day(s.day_of_year)).collect();
    let labels: Vec<usize> = train.iter().map(|s| band(s.temperature)).collect();
    model.fit_batch(&days, &labels)?;

    let test_days: Vec<Radians> = test.iter().map(|s| encode_day(s.day_of_year)).collect();
    let test_labels: Vec<usize> = test.iter().map(|s| band(s.temperature)).collect();
    println!(
        "temperature-band model: {} train / {} test samples, accuracy = {:.1}%",
        train.len(),
        test.len(),
        100.0 * model.evaluate(&test_days, &test_labels)?
    );

    // --- Serve the same queries from fleets of different sizes. ---------
    let queries = model.encode_batch(&test_days);
    let keys: Vec<String> = (0..test.len()).map(|i| format!("station-{i}")).collect();
    let unsharded = model.predict_encoded(&queries);

    println!(
        "\nrouted batched prediction ({} keyed queries):",
        keys.len()
    );
    for shards in [1usize, 2, 4, 8] {
        let fleet: ShardedModel<String> = ShardedModel::from_model(&model, shards, 7)?;
        let sharded = fleet.predict_batch(&keys, &queries)?;
        assert_eq!(sharded, unsharded, "sharding must never change answers");
        let loads: Vec<usize> = fleet
            .route(&keys)
            .into_iter()
            .map(|(_, rows)| rows.len())
            .collect();
        println!("  {shards} shard(s): bit-identical to unsharded; per-shard load {loads:?}");
    }

    // --- Graceful degradation: churn remaps only a 1/n slice. -----------
    let mut fleet: ShardedModel<String> = ShardedModel::from_model(&model, 4, 7)?;
    for (key, row) in keys.iter().zip(queries.rows()) {
        fleet.insert(key.clone(), row.to_hypervector());
    }
    println!(
        "\nshard churn over {} stored item-memory entries (4 shards):",
        fleet.len()
    );

    let owners_before: Vec<usize> = keys.iter().map(|k| fleet.shard_of(k)).collect();
    let new_shard = fleet.add_shard();
    let moved = keys
        .iter()
        .zip(&owners_before)
        .filter(|(k, before)| fleet.shard_of(*k) != **before)
        .count();
    println!(
        "  add shard #{new_shard}:    {:5.1}% of keys migrated (expected ≈ 1/5 = 20%)",
        100.0 * moved as f64 / keys.len() as f64
    );
    let after_add = fleet.predict_batch(&keys, &queries)?;
    assert_eq!(after_add, unsharded, "predictions survive shard addition");

    assert!(fleet.remove_shard(new_shard));
    let restored: Vec<usize> = keys.iter().map(|k| fleet.shard_of(k)).collect();
    assert_eq!(restored, owners_before, "removal restores the assignment");
    println!("  remove shard #{new_shard}: every key returns to its previous owner");

    let after_remove = fleet.predict_batch(&keys, &queries)?;
    assert_eq!(after_remove, unsharded, "predictions survive shard removal");
    assert_eq!(fleet.len(), keys.len(), "no item-memory entry was lost");
    println!(
        "  all {} entries intact; all {} answers still bit-identical",
        fleet.len(),
        keys.len()
    );
    Ok(())
}
