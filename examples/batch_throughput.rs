//! End-to-end **batched** temperature-forecast inference with samples/sec
//! reporting — the batched execution layer driving the paper's Beijing
//! workload (`Y ⊗ D ⊗ H` encoding, §2.3 associative regression).
//!
//! The same test split is predicted twice:
//!
//! 1. **per-sample** — the pre-batch pipeline: encode one sample, predict
//!    it, repeat;
//! 2. **batched** — `Encoder::encode_batch` fills one contiguous
//!    [`HypervectorBatch`] arena per calendar factor, the factors are bound
//!    row-wise in place, and `RegressionModel::predict_rows` fans the
//!    queries out across the worker pool.
//!
//! The two paths are **bit-identical** (asserted below); the batched one is
//! simply faster, scaling with available cores.
//!
//! ```text
//! cargo run --release --example batch_throughput
//! ```

use std::time::Instant;

use hdc::datasets::beijing::{self, BeijingConfig, BeijingSample, DAYS_PER_YEAR};
use hdc::encode::{AngleEncoder, Encoder, Radians, ScalarEncoder};
use hdc::learn::{metrics, RegressionTrainer};
use hdc::{BinaryHypervector, HdcError, HypervectorBatch};
use rand::{rngs::StdRng, SeedableRng};

const DIM: usize = 10_000;

fn main() -> Result<(), HdcError> {
    let mut rng = StdRng::seed_from_u64(99);
    let config = BeijingConfig {
        years: 2,
        ..BeijingConfig::default()
    };
    let data = beijing::generate(&config);
    let (train, test) = data.temporal_split(0.7);
    println!(
        "Beijing surrogate: {} hourly samples ({} train / {} test)",
        data.samples.len(),
        train.len(),
        test.len()
    );

    let year_enc = ScalarEncoder::with_levels(0.0, config.years as f64, 8, DIM, &mut rng)?;
    let day_enc = AngleEncoder::with_circular(73, DIM, 0.01, &mut rng)?;
    let hour_enc = AngleEncoder::with_circular(24, DIM, 0.01, &mut rng)?;
    let encode = |s: &BeijingSample| -> BinaryHypervector {
        let mut hv = year_enc.encode(s.year).clone();
        hv.bind_assign(day_enc.encode_periodic(s.day_of_year, DAYS_PER_YEAR));
        hv.bind_assign(hour_enc.encode_periodic(s.hour, 24.0));
        hv
    };

    let (min_t, max_t) = data.temperature_range();
    let label_enc = ScalarEncoder::with_levels(min_t, max_t, 64, DIM, &mut rng)?;
    let mut trainer = RegressionTrainer::new(label_enc);
    for s in &train {
        trainer.observe(&encode(s), s.temperature);
    }
    let model = trainer.finish(&mut rng)?;

    // --- Path 1: per-sample encode + predict (the pre-batch pipeline). ---
    let start = Instant::now();
    let serial: Vec<f64> = test.iter().map(|s| model.predict(&encode(s))).collect();
    let serial_time = start.elapsed();

    // --- Path 2: batched encode into contiguous arenas, row-wise binding,
    // parallel prediction over the arena. -------------------------------
    let start = Instant::now();
    let years: Vec<f64> = test.iter().map(|s| s.year).collect();
    let day_angles: Vec<Radians> = test
        .iter()
        .map(|s| Radians::periodic(s.day_of_year, DAYS_PER_YEAR))
        .collect();
    let hour_angles: Vec<Radians> = test
        .iter()
        .map(|s| Radians::periodic(s.hour, 24.0))
        .collect();

    let mut queries: HypervectorBatch = year_enc.encode_batch(&years);
    let days = day_enc.encode_batch(&day_angles);
    let hours = hour_enc.encode_batch(&hour_angles);
    queries.fill_rows(|i, mut row| {
        row.xor_assign(days.row(i));
        row.xor_assign(hours.row(i));
    });
    let batched = model.predict_rows(&queries);
    let batched_time = start.elapsed();

    assert_eq!(serial, batched, "batched path must be bit-identical");

    let truth: Vec<f64> = test.iter().map(|s| s.temperature).collect();
    println!("test MAE  = {:.2} °C", metrics::mae(&batched, &truth));
    println!("test R²   = {:.3}", metrics::r2(&batched, &truth));

    let rate = |t: std::time::Duration| test.len() as f64 / t.as_secs_f64();
    println!(
        "\nper-sample: {:>8.0} samples/s ({:.2?} for {})",
        rate(serial_time),
        serial_time,
        test.len()
    );
    println!(
        "batched:    {:>8.0} samples/s ({:.2?} for {}, {} worker threads)",
        rate(batched_time),
        batched_time,
        test.len(),
        minipool::max_threads()
    );
    println!(
        "speedup:    {:.2}x (bit-identical output)",
        serial_time.as_secs_f64() / batched_time.as_secs_f64()
    );
    Ok(())
}
