//! Temperature regression on the Beijing surrogate — the paper's first
//! Table 2 workload.
//!
//! Samples are encoded as `Y ⊗ D ⊗ H` (year level-encoded; day-of-year and
//! hour-of-day circular-encoded), the label is a level-encoded temperature,
//! and the model is the single-hypervector associative regressor of §2.3.
//!
//! ```text
//! cargo run --release --example temperature_forecast
//! ```

use hdc::core::BinaryHypervector;
use hdc::datasets::beijing::{self, BeijingConfig, BeijingSample, DAYS_PER_YEAR};
use hdc::encode::{AngleEncoder, ScalarEncoder};
use hdc::learn::{metrics, RegressionTrainer};
use hdc::HdcError;
use rand::{rngs::StdRng, SeedableRng};

const DIM: usize = 10_000;

fn main() -> Result<(), HdcError> {
    let mut rng = StdRng::seed_from_u64(99);
    let data = beijing::generate(&BeijingConfig::default());
    let (train, test) = data.temporal_split(0.7);
    println!(
        "Beijing surrogate: {} hourly samples ({} train / {} test)",
        data.samples.len(),
        train.len(),
        test.len()
    );

    // Feature encoders: the two circular calendar features wrap correctly.
    let year_enc = ScalarEncoder::with_levels(0.0, 4.0, 8, DIM, &mut rng)?;
    let day_enc = AngleEncoder::with_circular(73, DIM, 0.01, &mut rng)?;
    let hour_enc = AngleEncoder::with_circular(24, DIM, 0.01, &mut rng)?;
    let encode = |s: &BeijingSample| -> BinaryHypervector {
        let mut hv = year_enc.encode(s.year).clone();
        hv.bind_assign(day_enc.encode_periodic(s.day_of_year, DAYS_PER_YEAR));
        hv.bind_assign(hour_enc.encode_periodic(s.hour, 24.0));
        hv
    };

    let (min_t, max_t) = data.temperature_range();
    let label_enc = ScalarEncoder::with_levels(min_t, max_t, 64, DIM, &mut rng)?;

    let mut trainer = RegressionTrainer::new(label_enc);
    for s in &train {
        trainer.observe(&encode(s), s.temperature);
    }
    let model = trainer.finish(&mut rng)?;

    let predicted: Vec<f64> = test.iter().map(|s| model.predict(&encode(s))).collect();
    let truth: Vec<f64> = test.iter().map(|s| s.temperature).collect();
    println!("test MSE  = {:.1} °C²", metrics::mse(&predicted, &truth));
    println!("test MAE  = {:.2} °C", metrics::mae(&predicted, &truth));
    println!("test R²   = {:.3}", metrics::r2(&predicted, &truth));

    println!("\nsample forecasts:");
    for s in test.iter().step_by(test.len() / 6).take(6) {
        println!(
            "  year {:.2} day {:>5.1} hour {:>4.1}: truth {:6.1} °C, predicted {:6.1} °C",
            s.year,
            s.day_of_year,
            s.hour,
            s.temperature,
            model.predict(&encode(s))
        );
    }
    Ok(())
}
