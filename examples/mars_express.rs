//! Satellite power prediction on the Mars Express surrogate — the paper's
//! second Table 2 workload, with a single *circular* feature: the mean
//! anomaly of Mars' orbit around the sun.
//!
//! ```text
//! cargo run --release --example mars_express
//! ```

use hdc::core::BinaryHypervector;
use hdc::datasets::mars::{self, MarsConfig};
use hdc::encode::{AngleEncoder, ScalarEncoder};
use hdc::learn::{metrics, split, RegressionTrainer};
use hdc::HdcError;
use rand::{rngs::StdRng, SeedableRng};

const DIM: usize = 10_000;

fn main() -> Result<(), HdcError> {
    let mut rng = StdRng::seed_from_u64(2022);
    let data = mars::generate(&MarsConfig::default());
    let (train_idx, test_idx) = split::random(data.samples.len(), 0.7, &mut rng);
    println!(
        "Mars Express surrogate: {} telemetry samples ({} train / {} test)",
        data.samples.len(),
        train_idx.len(),
        test_idx.len()
    );

    // The anomaly wraps: 2π − ε and ε are the same orbital position.
    let anomaly_enc = AngleEncoder::with_circular(512, DIM, 0.01, &mut rng)?;
    let (min_p, max_p) = data.power_range();
    let label_enc = ScalarEncoder::with_levels(min_p, max_p, 64, DIM, &mut rng)?;

    let mut trainer = RegressionTrainer::new(label_enc);
    for &i in &train_idx {
        let s = &data.samples[i];
        trainer.observe(anomaly_enc.encode(s.mean_anomaly), s.power);
    }
    let model = trainer.finish(&mut rng)?;

    let encode = |anomaly: f64| -> &BinaryHypervector { anomaly_enc.encode(anomaly) };
    let predicted: Vec<f64> = test_idx
        .iter()
        .map(|&i| model.predict(encode(data.samples[i].mean_anomaly)))
        .collect();
    let truth: Vec<f64> = test_idx.iter().map(|&i| data.samples[i].power).collect();

    println!("test MSE  = {:.0} W²", metrics::mse(&predicted, &truth));
    println!("test RMSE = {:.1} W", metrics::rmse(&predicted, &truth));
    println!("test R²   = {:.3}", metrics::r2(&predicted, &truth));

    println!("\npower curve around the orbit (truth is noisy telemetry):");
    for k in 0..8 {
        let anomaly = k as f64 * std::f64::consts::TAU / 8.0;
        println!(
            "  mean anomaly {:4.2} rad: predicted {:6.1} W",
            anomaly,
            model.predict(encode(anomaly))
        );
    }
    Ok(())
}
