//! Quickstart: hypervector arithmetic, the three basis-hypervector
//! families, and a full classifier through the unified `Pipeline` builder —
//! all in two minutes.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hdc::basis::{BasisSet, CircularBasis, LevelBasis, RandomBasis};
use hdc::{Basis, BinaryHypervector, Enc, HdcError, MajorityAccumulator, Pipeline, Radians};
use rand::{rngs::StdRng, SeedableRng};

fn main() -> Result<(), HdcError> {
    let mut rng = StdRng::seed_from_u64(42);
    let dim = hdc::DEFAULT_DIMENSION;

    println!("== The three HDC operations (d = {dim}) ==");
    let a = BinaryHypervector::random(dim, &mut rng);
    let b = BinaryHypervector::random(dim, &mut rng);
    println!(
        "δ(a, b)            = {:.3}   (random pair: quasi-orthogonal)",
        a.normalized_hamming(&b)
    );

    let bound = a.bind(&b);
    println!(
        "δ(a⊗b, a)          = {:.3}   (binding hides both operands)",
        bound.normalized_hamming(&a)
    );
    println!(
        "a⊗b⊗a == b         = {}      (binding is self-inverse)",
        bound.bind(&a) == b
    );

    let mut acc = MajorityAccumulator::new(dim);
    acc.push(&a);
    acc.push(&b);
    let bundle = acc.finalize_random(&mut rng);
    println!(
        "δ(a⊕b, a)          = {:.3}   (bundling stays similar to members)",
        bundle.normalized_hamming(&a)
    );

    let shifted = a.permute(1);
    println!(
        "δ(Π(a), a)         = {:.3}   (permutation decorrelates)",
        shifted.normalized_hamming(&a)
    );
    println!("Π⁻¹(Π(a)) == a     = {}", shifted.permute_inverse(1) == a);

    println!("\n== Basis-hypervector sets (m = 12) ==");
    let random = RandomBasis::new(12, dim, &mut rng)?;
    let level = LevelBasis::new(12, dim, &mut rng)?;
    let circular = CircularBasis::new(12, dim, &mut rng)?;

    println!("distances from member 0:");
    println!(
        "  index:    {}",
        (0..12).map(|i| format!("{i:5}")).collect::<String>()
    );
    for (name, basis) in [
        ("random", &random as &dyn BasisSet),
        ("level", &level),
        ("circular", &circular),
    ] {
        let row: String = (0..12)
            .map(|j| format!("{:5.2}", basis.get(0).normalized_hamming(basis.get(j))))
            .collect();
        println!("  {name:<9} {row}");
    }
    println!("\nrandom: flat ≈ 0.5 | level: linear ramp | circular: ramps up then *wraps back*");

    println!("\n== A full classifier through Pipeline::builder (9 lines) ==");
    // Day vs night over the 24-hour circle — basis, encoder and learner
    // wired by the builder; no manual RNG/basis/encoder/trainer plumbing.
    let mut model = Pipeline::builder(dim)
        .seed(7)
        .basis(Basis::Circular { m: 24, r: 0.0 })
        .encoder(Enc::angle())
        .build()?;
    let hours: Vec<Radians> = (0..24)
        .map(|h| Radians::periodic(f64::from(h), 24.0))
        .collect();
    let labels: Vec<usize> = (0..24).map(|h| usize::from(h >= 12)).collect();
    model.fit_batch(&hours, &labels)?;
    println!(
        "3 am  -> class {} (am)",
        model.predict(&Radians::periodic(3.0, 24.0))
    );
    // (end of the 9-line classifier)
    println!(
        "9 pm  -> class {} (am=0 / pm=1)",
        model.predict(&Radians::periodic(21.0, 24.0))
    );
    println!(
        "train accuracy = {:.0}%",
        100.0 * model.evaluate(&hours, &labels)?
    );
    Ok(())
}
