//! Quickstart: hypervector arithmetic and the three basis-hypervector
//! families in two minutes.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hdc::basis::{BasisSet, CircularBasis, LevelBasis, RandomBasis};
use hdc::{BinaryHypervector, HdcError, MajorityAccumulator};
use rand::{rngs::StdRng, SeedableRng};

fn main() -> Result<(), HdcError> {
    let mut rng = StdRng::seed_from_u64(42);
    let dim = hdc::DEFAULT_DIMENSION;

    println!("== The three HDC operations (d = {dim}) ==");
    let a = BinaryHypervector::random(dim, &mut rng);
    let b = BinaryHypervector::random(dim, &mut rng);
    println!(
        "δ(a, b)            = {:.3}   (random pair: quasi-orthogonal)",
        a.normalized_hamming(&b)
    );

    let bound = a.bind(&b);
    println!(
        "δ(a⊗b, a)          = {:.3}   (binding hides both operands)",
        bound.normalized_hamming(&a)
    );
    println!(
        "a⊗b⊗a == b         = {}      (binding is self-inverse)",
        bound.bind(&a) == b
    );

    let mut acc = MajorityAccumulator::new(dim);
    acc.push(&a);
    acc.push(&b);
    let bundle = acc.finalize_random(&mut rng);
    println!(
        "δ(a⊕b, a)          = {:.3}   (bundling stays similar to members)",
        bundle.normalized_hamming(&a)
    );

    let shifted = a.permute(1);
    println!(
        "δ(Π(a), a)         = {:.3}   (permutation decorrelates)",
        shifted.normalized_hamming(&a)
    );
    println!("Π⁻¹(Π(a)) == a     = {}", shifted.permute_inverse(1) == a);

    println!("\n== Basis-hypervector sets (m = 12) ==");
    let random = RandomBasis::new(12, dim, &mut rng)?;
    let level = LevelBasis::new(12, dim, &mut rng)?;
    let circular = CircularBasis::new(12, dim, &mut rng)?;

    println!("distances from member 0:");
    println!(
        "  index:    {}",
        (0..12).map(|i| format!("{i:5}")).collect::<String>()
    );
    for (name, basis) in [
        ("random", &random as &dyn BasisSet),
        ("level", &level),
        ("circular", &circular),
    ] {
        let row: String = (0..12)
            .map(|j| format!("{:5.2}", basis.get(0).normalized_hamming(basis.get(j))))
            .collect();
        println!("  {name:<9} {row}");
    }
    println!("\nrandom: flat ≈ 0.5 | level: linear ramp | circular: ramps up then *wraps back*");
    Ok(())
}
