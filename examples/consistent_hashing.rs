//! Hyperdimensional consistent hashing — the application circular
//! hypervectors were invented for (Heddes et al., DAC 2022; reference 13
//! of the reproduced paper).
//!
//! Demonstrates minimal remapping under node churn and graceful degradation
//! under bit errors, against a classic ring and the naive modulo scheme.
//!
//! ```text
//! cargo run --release --example consistent_hashing
//! ```

use hdc::hash::{modulo_assign, ClassicRing, HdcHashRing};
use hdc::HdcError;
use rand::{rngs::StdRng, SeedableRng};

fn main() -> Result<(), HdcError> {
    let mut rng = StdRng::seed_from_u64(1);
    let keys: Vec<String> = (0..5_000).map(|i| format!("session-{i}")).collect();

    let mut ring = HdcHashRing::new(128, 10_000, &mut rng)?;
    let mut classic = ClassicRing::new();
    for i in 0..8 {
        ring.add_node(format!("cache-{i}"));
        classic.add_node(format!("cache-{i}"));
    }

    let owners = |ring: &HdcHashRing<String>| -> Vec<String> {
        keys.iter()
            .map(|k| ring.lookup(k).expect("non-empty").clone())
            .collect()
    };
    let moved = |a: &[String], b: &[String]| {
        a.iter().zip(b).filter(|(x, y)| x != y).count() as f64 / a.len() as f64
    };

    // Churn: add a ninth node.
    let before = owners(&ring);
    ring.add_node("cache-new".into());
    let after = owners(&ring);
    println!(
        "hdc ring, add node:        {:5.1}% of keys remapped",
        100.0 * moved(&before, &after)
    );

    let classic_before: Vec<String> = keys
        .iter()
        .map(|k| classic.lookup(k).expect("non-empty").clone())
        .collect();
    classic.add_node("cache-new".into());
    let classic_after: Vec<String> = keys
        .iter()
        .map(|k| classic.lookup(k).expect("non-empty").clone())
        .collect();
    println!(
        "classic ring, add node:    {:5.1}% of keys remapped",
        100.0 * moved(&classic_before, &classic_after)
    );

    let mod_before: Vec<String> = keys
        .iter()
        .map(|k| modulo_assign(k, 8).to_string())
        .collect();
    let mod_after: Vec<String> = keys
        .iter()
        .map(|k| modulo_assign(k, 9).to_string())
        .collect();
    println!(
        "modulo, grow 8 -> 9:       {:5.1}% of keys remapped  (the scheme to avoid)",
        100.0 * moved(&mod_before, &mod_after)
    );

    // Memory faults: the hyperdimensional ring degrades gracefully.
    println!("\nbit-error robustness of the hdc ring (one node corrupted):");
    let baseline = owners(&ring);
    for noise in [0.001, 0.01, 0.05, 0.2] {
        ring.add_node("cache-3".into()); // repair, then inject fresh noise
        ring.corrupt_node(&"cache-3".to_string(), noise, &mut rng);
        let corrupted = owners(&ring);
        println!(
            "  {:5.1}% of bits flipped -> {:5.2}% of keys remapped",
            100.0 * noise,
            100.0 * moved(&baseline, &corrupted)
        );
    }
    println!("\n(a single flipped bit in a classic ring's stored position teleports the node)");
    Ok(())
}
