//! The serving stack as a process: spawn the micro-batching [`Runtime`]
//! around a trained model, put the framed-TCP [`Server`] in front of it on
//! an ephemeral loopback port, and drive predict / insert / online-fit /
//! stats through the [`BlockingClient`] — verifying every served answer
//! against the direct `Model`.
//!
//! This is the CI smoke test for the service front-end: it exercises the
//! whole path (client framing → TCP → connection handler → ingestion
//! queue → micro-batch → sharded predict → reply) and asserts bit-identity
//! with the in-process model.
//!
//! ```text
//! cargo run --release --example service_loopback
//! ```

use std::sync::Arc;
use std::thread;
use std::time::Instant;

use hdc::serve::Radians;
use hdc::{
    Basis, BinaryHypervector, BlockingClient, Enc, HdcError, Model, Pipeline, Runtime,
    RuntimeConfig, Server,
};

fn train(seed: u64) -> Result<Model<Radians>, HdcError> {
    let mut model = Pipeline::builder(10_000)
        .seed(seed)
        .classes(3)
        .basis(Basis::Circular { m: 24, r: 0.0 })
        .encoder(Enc::angle())
        .build()?;
    // Three day-phases on the 24-hour circle: night / day / evening.
    let hours: Vec<Radians> = (0..96)
        .map(|i| Radians::periodic(f64::from(i) / 4.0, 24.0))
        .collect();
    let labels: Vec<usize> = (0..96)
        .map(|i| match i / 4 {
            0..=7 => 0,
            8..=17 => 1,
            _ => 2,
        })
        .collect();
    model.fit_batch(&hours, &labels)?;
    Ok(model)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Train once; keep a reference copy for bit-identity checks. -----
    let reference = train(42)?;
    let queries: Vec<Radians> = (0..48)
        .map(|i| Radians::periodic(f64::from(i) / 2.0, 24.0))
        .collect();
    let encoded: Vec<BinaryHypervector> = queries.iter().map(|q| reference.encode(q)).collect();
    let expected: Vec<usize> = queries.iter().map(|q| reference.predict(q)).collect();

    // --- Bring up the runtime (same seed → bit-identical model). --------
    let runtime = Runtime::spawn(
        train(42)?,
        RuntimeConfig {
            shards: 4,
            ..RuntimeConfig::default()
        },
    )?;
    let server = Server::spawn("127.0.0.1:0", runtime.handle())?;
    let addr = server.local_addr();
    println!("serving 4 shards on {addr}");

    // --- Concurrent clients: micro-batches amortize the fan-out. --------
    let encoded = Arc::new(encoded);
    let expected = Arc::new(expected);
    let start = Instant::now();
    let clients: Vec<_> = (0..4)
        .map(|client_id| {
            let encoded = Arc::clone(&encoded);
            let expected = Arc::clone(&expected);
            thread::spawn(move || -> std::io::Result<usize> {
                let mut client = BlockingClient::connect(addr)?;
                let mut served = 0;
                for (i, (hv, &label)) in encoded.iter().zip(expected.iter()).enumerate() {
                    let prediction = client.predict(&format!("c{client_id}-q{i}"), hv)?;
                    assert_eq!(
                        prediction.label, label,
                        "framed-TCP answer must be bit-identical to the direct model"
                    );
                    served += 1;
                }
                Ok(served)
            })
        })
        .collect();
    let served: usize = clients
        .into_iter()
        .map(|c| c.join().expect("client thread").expect("client io"))
        .sum();
    println!(
        "{served} predictions over TCP in {:.1} ms — all bit-identical to Model::predict",
        start.elapsed().as_secs_f64() * 1e3
    );

    // --- Item memory + online learning over the wire. -------------------
    let mut client = BlockingClient::connect(addr)?;
    assert!(!client.insert("station-7", &encoded[7])?);
    assert!(client.insert("station-7", &encoded[8])?);
    client.fit(&encoded[0], expected[0])?;
    let generation = client.refresh()?;
    println!("one online observation folded in; published generation {generation}");
    let after = client.predict("station-7", &encoded[7])?;
    assert_eq!(
        after.generation, generation,
        "predictions report the new generation"
    );
    assert!(client.remove("station-7")?);

    // --- Stats: queue/batch/latency metrics and per-shard load. ---------
    let stats = client.stats()?;
    println!(
        "stats: generation {}, {} classes, d = {}, {} requests in {} batches (mean size {:.1})",
        stats.generation,
        stats.classes,
        stats.dim,
        stats.metrics.requests,
        stats.metrics.batches,
        stats.metrics.mean_batch_size,
    );
    println!(
        "latency: p50 {:.0} µs, p95 {:.0} µs, p99 {:.0} µs; shard loads {:?}",
        stats.metrics.latency_us_p50,
        stats.metrics.latency_us_p95,
        stats.metrics.latency_us_p99,
        stats.shard_loads,
    );
    assert_eq!(stats.metrics.requests as usize, served + 1);
    assert_eq!(stats.metrics.fits, 1);

    server.shutdown();
    let (fleet, learner) = runtime.shutdown();
    println!(
        "shutdown: fleet holds {} entries, trainer saw {} observations",
        fleet.len(),
        learner.observed()
    );
    Ok(())
}
