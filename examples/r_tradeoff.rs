//! The `r` hyperparameter (paper §5.2): interpolating a circular set
//! towards a random set trades correlation preservation for information
//! content. This example prints the similarity profile around the circle
//! for several `r` values — the paper's Figure 6.
//!
//! ```text
//! cargo run --release --example r_tradeoff
//! ```

use hdc::basis::{analysis, CircularBasis};
use hdc::HdcError;
use rand::{rngs::StdRng, SeedableRng};

fn main() -> Result<(), HdcError> {
    let m = 10;
    let dim = hdc::DEFAULT_DIMENSION;

    println!("similarity of each node to node 0 in a circular set of {m} (d = {dim}):\n");
    println!(
        "  node:      {}",
        (0..m).map(|i| format!("{i:6}")).collect::<String>()
    );
    for r in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut rng = StdRng::seed_from_u64(606);
        let basis = CircularBasis::with_randomness(m, dim, r, &mut rng)?;
        let profile = analysis::similarity_profile(&basis, 0);
        let row: String = profile.iter().map(|s| format!("{s:6.2}")).collect();
        println!("  r = {r:<4}  {row}");
    }
    println!(
        "\nr = 0: structured circle (wraps, antipode ≈ 0.5) … r = 1: every node quasi-orthogonal.\n\
         Intermediate r keeps *local* correlation while raising the set's information content —\n\
         the paper finds small r > 0 (0.01–0.1) to be the accuracy sweet spot (its Figure 8)."
    );
    Ok(())
}
