//! Surgical gesture classification on the JIGSAWS surrogate — the paper's
//! Table 1 workload on a single task, comparing the three basis families.
//!
//! Each sample is 18 manipulator orientation angles; the whole pipeline
//! (per-channel angle quantization, key–value record binding, centroid
//! learning) is wired by `Pipeline::builder` with an `Enc::record` spec of
//! 18 angle fields — no manual encoder plumbing.
//!
//! ```text
//! cargo run --release --example surgical_gestures
//! ```

use hdc::datasets::jigsaws::{JigsawsConfig, JigsawsSample, JigsawsTask, TRAIN_SURGEON};
use hdc::{Basis, Enc, FieldSpec, HdcError, Pipeline};

const DIM: usize = 10_000;
const BINS: usize = 16;

fn main() -> Result<(), HdcError> {
    let task = JigsawsTask::KnotTying;
    let data = task.generate(&JigsawsConfig::default());
    let (train, test) = data.train_test_split(TRAIN_SURGEON);
    println!(
        "{}: {} gestures, {} train frames (surgeon D), {} test frames",
        task.name(),
        data.gesture_count,
        train.len(),
        test.len()
    );

    for basis in [
        Basis::Random { m: BINS },
        Basis::Level { m: BINS, r: 0.0 },
        Basis::Circular { m: BINS, r: 0.1 },
    ] {
        let accuracy = evaluate(basis, data.gesture_count, &train, &test)?;
        println!(
            "{:<28} accuracy = {:.1}%",
            format!("{basis:?}"),
            100.0 * accuracy
        );
    }
    Ok(())
}

fn evaluate(
    basis: Basis,
    classes: usize,
    train: &[&JigsawsSample],
    test: &[&JigsawsSample],
) -> Result<f64, HdcError> {
    // 18 circular kinematic channels, quantized through the basis under
    // test, record-bound and centroid-learned — one builder chain.
    let mut model = Pipeline::builder(DIM)
        .seed(7)
        .classes(classes)
        .basis(basis)
        .encoder(Enc::record(vec![FieldSpec::angle(); 18]))
        .build()?;

    let rows: Vec<&[f64]> = train.iter().map(|s| s.angles.as_slice()).collect();
    let labels: Vec<usize> = train.iter().map(|s| s.gesture).collect();
    model.fit_batch(rows.iter().copied(), &labels)?;

    let test_rows: Vec<&[f64]> = test.iter().map(|s| s.angles.as_slice()).collect();
    let test_labels: Vec<usize> = test.iter().map(|s| s.gesture).collect();
    model.evaluate(test_rows.iter().copied(), &test_labels)
}
