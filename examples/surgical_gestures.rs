//! Surgical gesture classification on the JIGSAWS surrogate — the paper's
//! Table 1 workload on a single task, comparing the three basis families.
//!
//! Each sample is 18 manipulator orientation angles; the sample encoding is
//! the key–value record `⊕ᵢ Kᵢ ⊗ Vᵢ` and the model is a centroid classifier
//! trained on the experienced surgeon "D" only.
//!
//! ```text
//! cargo run --release --example surgical_gestures
//! ```

use hdc::basis::BasisKind;
use hdc::core::BinaryHypervector;
use hdc::datasets::jigsaws::{JigsawsConfig, JigsawsSample, JigsawsTask, TRAIN_SURGEON};
use hdc::encode::RecordEncoder;
use hdc::learn::{metrics, CentroidClassifier};
use hdc::HdcError;
use rand::{rngs::StdRng, SeedableRng};

const DIM: usize = 10_000;
const BINS: usize = 16;

fn main() -> Result<(), HdcError> {
    let task = JigsawsTask::KnotTying;
    let data = task.generate(&JigsawsConfig::default());
    let (train, test) = data.train_test_split(TRAIN_SURGEON);
    println!(
        "{}: {} gestures, {} train frames (surgeon D), {} test frames",
        task.name(),
        data.gesture_count,
        train.len(),
        test.len()
    );

    for kind in [
        BasisKind::Random,
        BasisKind::Level { randomness: 0.0 },
        BasisKind::Circular { randomness: 0.1 },
    ] {
        let accuracy = evaluate(kind, &data.gesture_count, &train, &test)?;
        println!(
            "{:<22} accuracy = {:.1}%",
            format!("{kind:?}"),
            100.0 * accuracy
        );
    }
    Ok(())
}

fn evaluate(
    kind: BasisKind,
    classes: &usize,
    train: &[&JigsawsSample],
    test: &[&JigsawsSample],
) -> Result<f64, HdcError> {
    let mut rng = StdRng::seed_from_u64(7);

    // One angular value encoder per channel, equal-width bins over [0, 2π).
    let value_encoders: Vec<Vec<BinaryHypervector>> = (0..18)
        .map(|_| Ok(kind.build(BINS, DIM, &mut rng)?.hypervectors().to_vec()))
        .collect::<Result<_, HdcError>>()?;
    let record = RecordEncoder::new(18, DIM, &mut rng)?;
    let tau = std::f64::consts::TAU;
    let encode = |sample: &JigsawsSample, rng: &mut StdRng| -> BinaryHypervector {
        let values: Vec<&BinaryHypervector> = sample
            .angles
            .iter()
            .zip(&value_encoders)
            .map(|(&angle, hvs)| {
                let bin = ((angle.rem_euclid(tau) / tau * BINS as f64) as usize).min(BINS - 1);
                &hvs[bin]
            })
            .collect();
        record.encode(&values, rng).expect("arity matches")
    };

    let encoded: Vec<(BinaryHypervector, usize)> = train
        .iter()
        .map(|s| (encode(s, &mut rng), s.gesture))
        .collect();
    let model = CentroidClassifier::fit(
        encoded.iter().map(|(hv, l)| (hv, *l)),
        *classes,
        DIM,
        &mut rng,
    )?;

    let predicted: Vec<usize> = test
        .iter()
        .map(|s| model.predict(&encode(s, &mut rng)))
        .collect();
    let truth: Vec<usize> = test.iter().map(|s| s.gesture).collect();
    Ok(metrics::accuracy(&predicted, &truth))
}
