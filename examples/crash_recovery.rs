//! Crash recovery, the hard way: **SIGKILL a durable shard while four
//! concurrent writers are mid-fit and prove the restart is bit-identical
//! for everything it acknowledged.**
//!
//! The example re-executes itself. The parent process spawns
//! `current_exe() --child DIR [--fsync POLICY]`, which runs a durable
//! [`Runtime`] (write-ahead log under `DIR`) and starts [`WRITERS`]
//! threads, each fitting its own deterministic stream through a cloned
//! handle — the shape the group-commit flush scheduler exists for. Every
//! writer streams acknowledged fits to stdout, one `ack W I` line *after*
//! its `fit` call returns, i.e. after the group's `fdatasync` covered the
//! record. Once the parent has seen enough acks it sends SIGKILL
//! (`Child::kill`), so the child dies with no destructors, no shutdown
//! snapshot, and very likely a torn record at the log tail.
//!
//! The parent then recovers in-process from the same directory and checks
//! the durability contract:
//!
//! * every **acknowledged** fit survived, per writer (each writer labels
//!   with its own id, so the recovered trainer's per-class counts are
//!   per-writer retained counts — unacked tail records may legitimately
//!   also survive, torn ones are truncated away);
//! * the recovered state is **bit-identical** to a reference model fed
//!   exactly the per-writer prefixes the log retained (a writer only
//!   submits fit `k+1` after fit `k` acked, so each writer's retained set
//!   is a prefix — and the centroid fold is integer-commutative, so the
//!   kill-time interleaving cannot matter);
//! * the item memory writes acknowledged before the kill are all present
//!   and bit-identical.
//!
//! `--fsync always|batch|never` picks the [`SyncPolicy`] for both lives;
//! CI runs the `always` leg, where the group commit is doing the most
//! work.
//!
//! ```text
//! cargo run --release --example crash_recovery [-- --fsync always]
//! ```

use std::io::{BufRead, BufReader, Write as _};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Instant;

use hdc::{
    Basis, BinaryHypervector, DurabilityConfig, Enc, HdcError, Model, Pipeline, Radians, Runtime,
    RuntimeConfig, SyncPolicy,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIM: usize = 1024;
const SEED: u64 = 42;
/// Concurrent durable writer threads in the child.
const WRITERS: usize = 4;
/// Total acks (across writers) the parent waits for before the trigger.
const ACKS_BEFORE_KILL: usize = 40;
/// Item-memory keys the child registers (and acks) before fitting.
const ITEMS: usize = 4;

/// The untrained pipeline every life starts from: writer-of-origin
/// classification over the daily circle — one class per writer, so the
/// recovered per-class counts are per-writer retained counts.
fn blank() -> Result<Model<Radians>, HdcError> {
    Pipeline::builder(DIM)
        .seed(SEED)
        .classes(WRITERS)
        .basis(Basis::Circular { m: 48, r: 0.0 })
        .encoder(Enc::angle())
        .build()
}

fn durable(dir: &Path, sync: SyncPolicy) -> RuntimeConfig {
    RuntimeConfig {
        durability: Some(DurabilityConfig {
            sync,
            ..DurabilityConfig::new(dir)
        }),
        ..RuntimeConfig::default()
    }
}

fn parse_sync(value: &str) -> Result<SyncPolicy, String> {
    match value {
        "always" => Ok(SyncPolicy::Always),
        "batch" => Ok(SyncPolicy::EveryBatch),
        "never" => Ok(SyncPolicy::Never),
        other => Err(format!(
            "invalid --fsync {other:?}; expected always, batch or never"
        )),
    }
}

/// Deterministic per-writer training stream: any prefix is
/// reconstructible from the writer id and its length alone, which is what
/// lets the parent rebuild a reference model for exactly the records the
/// log retained.
fn observation(writer: usize, i: usize) -> (Radians, usize) {
    let step = (writer * 31 + i) % 96;
    (Radians::periodic(step as f64 / 4.0, 24.0), writer)
}

/// The item memories the child inserts, reproducible in the parent.
fn item_memories() -> Vec<(String, BinaryHypervector)> {
    let mut rng = StdRng::seed_from_u64(7);
    (0..ITEMS)
        .map(|i| {
            (
                format!("sensor-{i}"),
                BinaryHypervector::random(DIM, &mut rng),
            )
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sync = SyncPolicy::EveryBatch;
    let mut child_dir = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--child" => {
                child_dir = Some(PathBuf::from(
                    iter.next().ok_or("--child needs a data dir")?,
                ));
            }
            "--fsync" => {
                sync = parse_sync(iter.next().ok_or("--fsync needs a value")?)?;
            }
            other => return Err(format!("unknown argument {other:?}").into()),
        }
    }
    match child_dir {
        Some(dir) => child(&dir, sync),
        None => parent(sync),
    }
}

/// The victim: a durable runtime with [`WRITERS`] concurrent fit threads,
/// each acking every write to stdout, running until killed from outside.
fn child(dir: &Path, sync: SyncPolicy) -> Result<(), Box<dyn std::error::Error>> {
    let runtime = Runtime::spawn(blank()?, durable(dir, sync))?;
    let handle = runtime.handle();
    {
        let mut out = std::io::stdout().lock();
        for (key, hv) in item_memories() {
            handle.insert(key, hv)?;
        }
        writeln!(out, "items {ITEMS}")?;
        out.flush()?;
    }
    std::thread::scope(|scope| {
        for writer in 0..WRITERS {
            let handle = handle.clone();
            scope.spawn(move || {
                for i in 0..1_000_000usize {
                    let (hour, label) = observation(writer, i);
                    // Durable path: this call returns only after the
                    // group flush covering the fit's WAL record retires,
                    // so printing the ack is an honest promise.
                    handle.fit(&hour, label).expect("durable fit failed");
                    let mut out = std::io::stdout().lock();
                    writeln!(out, "ack {writer} {i}").expect("child stdout closed");
                    out.flush().expect("child stdout closed");
                }
            });
        }
    });
    Err("child was never killed".into())
}

fn parent(sync: SyncPolicy) -> Result<(), Box<dyn std::error::Error>> {
    let started = Instant::now();
    let dir = std::env::temp_dir().join(format!("hdc-crash-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let fsync_arg = match sync {
        SyncPolicy::Always => "always",
        SyncPolicy::EveryBatch => "batch",
        SyncPolicy::Never => "never",
    };

    // --- First life: spawn the child and SIGKILL it mid-fit. ---
    let mut victim = Command::new(std::env::current_exe()?)
        .arg("--child")
        .arg(&dir)
        .arg("--fsync")
        .arg(fsync_arg)
        .stdout(Stdio::piped())
        .spawn()?;
    let stdout = victim.stdout.take().ok_or("child stdout missing")?;
    let mut acked = [0usize; WRITERS];
    for line in BufReader::new(stdout).lines() {
        let line = line?;
        if let Some(rest) = line.strip_prefix("ack ") {
            let writer: usize = rest
                .split_whitespace()
                .next()
                .ok_or("malformed ack line")?
                .parse()?;
            // The acked count doubles as the writer's next index: writer
            // streams are in-order, ack k precedes the submit of k+1.
            acked[writer] += 1;
        }
        if acked.iter().sum::<usize>() >= ACKS_BEFORE_KILL {
            break;
        }
    }
    let total_acked: usize = acked.iter().sum();
    if total_acked < ACKS_BEFORE_KILL {
        return Err(format!("child exited after only {total_acked} acks").into());
    }
    victim.kill()?; // SIGKILL: no drop glue, no shutdown snapshot.
    victim.wait()?;
    println!(
        "killed the shard after {total_acked} acknowledged fits across {WRITERS} writers {acked:?}"
    );

    // --- Second life: recover from the log alone. ---
    let runtime = Runtime::spawn(blank()?, durable(&dir, sync))?;
    let handle = runtime.handle();

    // Item memories acked before the kill are all there, bit-identical.
    let recovered_items = handle.snapshot()?;
    for (key, expected) in item_memories() {
        let found = recovered_items
            .items()
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, hv)| hv);
        assert_eq!(found, Some(&expected), "item {key} must survive the kill");
    }

    let probes: Vec<Radians> = (0..96)
        .map(|i| Radians::periodic(i as f64 / 4.0, 24.0))
        .collect();
    let recovered: Vec<usize> = probes
        .iter()
        .map(|hour| Ok::<_, HdcError>(handle.predict("probe", hour)?.label))
        .collect::<Result<_, _>>()?;
    let (_, learner) = runtime.shutdown();
    let retained: Vec<usize> = learner
        .as_classify()
        .ok_or("classification trainer expected")?
        .counts()
        .to_vec();
    for writer in 0..WRITERS {
        assert!(
            retained[writer] >= acked[writer],
            "writer {writer}: log retained {} fits but {} were acknowledged",
            retained[writer],
            acked[writer]
        );
    }

    // The recovered state must equal a model fed exactly the retained
    // per-writer prefixes of the (deterministic) training streams — no
    // more, no less. Feeding them writer-major is fine: the centroid
    // fold is integer-commutative, so the original interleaving of the
    // writers cannot change a single bit.
    let mut reference = blank()?;
    for (writer, &survived) in retained.iter().enumerate() {
        for i in 0..survived {
            let (hour, label) = observation(writer, i);
            reference.fit(&hour, label)?;
        }
    }
    let expected: Vec<usize> = probes.iter().map(|hour| reference.predict(hour)).collect();
    assert_eq!(
        recovered, expected,
        "recovered predictions must be bit-identical to the retained prefixes"
    );

    let total_retained: usize = retained.iter().sum();
    println!(
        "recovered {total_retained} fits ({} unacked tail records also survived)",
        total_retained - total_acked
    );
    println!(
        "bit-identical on all {} probes in {:.2?} (fsync {fsync_arg})",
        probes.len(),
        started.elapsed()
    );
    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
