//! Crash recovery, the hard way: **SIGKILL a durable shard mid-fit and
//! prove the restart is bit-identical for everything it acknowledged.**
//!
//! The example re-executes itself. The parent process spawns
//! `current_exe() --child DIR`, which runs a durable [`Runtime`]
//! (write-ahead log under `DIR`) and streams acknowledged fits to stdout
//! — one `ack N` line *after* each `fit` call returns, i.e. after the
//! WAL record is fsynced. Once the parent has seen enough acks it sends
//! SIGKILL (`Child::kill`), so the child dies with no destructors, no
//! shutdown snapshot, and very likely a torn record at the log tail.
//!
//! The parent then recovers in-process from the same directory and checks
//! the durability contract:
//!
//! * every **acknowledged** fit survived (the recovered trainer has
//!   observed at least that many examples — unacked tail records may
//!   legitimately also survive, torn ones are truncated away);
//! * the recovered state is **bit-identical** to a reference model fed
//!   exactly the observations the log retained — every prediction over a
//!   probe grid matches;
//! * the item memory writes acknowledged before the kill are all present
//!   and bit-identical.
//!
//! ```text
//! cargo run --release --example crash_recovery
//! ```

use std::io::{BufRead, BufReader, Write as _};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Instant;

use hdc::{
    Basis, BinaryHypervector, DurabilityConfig, Enc, HdcError, Model, Pipeline, Radians, Runtime,
    RuntimeConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIM: usize = 1024;
const SEED: u64 = 42;
/// Acks the parent waits for before pulling the trigger.
const ACKS_BEFORE_KILL: usize = 25;
/// Item-memory keys the child registers (and acks) before fitting.
const ITEMS: usize = 4;

/// The untrained pipeline every life starts from: hour-of-day
/// classification over the daily circle.
fn blank() -> Result<Model<Radians>, HdcError> {
    Pipeline::builder(DIM)
        .seed(SEED)
        .classes(2)
        .basis(Basis::Circular { m: 48, r: 0.0 })
        .encoder(Enc::angle())
        .build()
}

fn durable(dir: &Path) -> RuntimeConfig {
    RuntimeConfig {
        durability: Some(DurabilityConfig::new(dir)),
        ..RuntimeConfig::default()
    }
}

/// Deterministic training stream: any prefix is reconstructible from its
/// length alone, which is what lets the parent rebuild a reference model
/// for exactly the records the log retained.
fn observation(i: usize) -> (Radians, usize) {
    let step = i % 96;
    (
        Radians::periodic(step as f64 / 4.0, 24.0),
        usize::from(step >= 48),
    )
}

/// The item memories the child inserts, reproducible in the parent.
fn item_memories() -> Vec<(String, BinaryHypervector)> {
    let mut rng = StdRng::seed_from_u64(7);
    (0..ITEMS)
        .map(|i| {
            (
                format!("sensor-{i}"),
                BinaryHypervector::random(DIM, &mut rng),
            )
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("--child") => {
            let dir = PathBuf::from(args.next().ok_or("--child needs a data dir")?);
            child(&dir)
        }
        _ => parent(),
    }
}

/// The victim: a durable runtime that acks every write to stdout and
/// keeps fitting until it is killed from outside.
fn child(dir: &Path) -> Result<(), Box<dyn std::error::Error>> {
    let runtime = Runtime::spawn(blank()?, durable(dir))?;
    let handle = runtime.handle();
    let mut out = std::io::stdout().lock();
    for (key, hv) in item_memories() {
        handle.insert(key, hv)?;
    }
    writeln!(out, "items {ITEMS}")?;
    out.flush()?;
    for i in 0..1_000_000 {
        let (hour, label) = observation(i);
        // Durable path: this call returns only after the WAL record for
        // the fit is flushed, so printing the ack is an honest promise.
        handle.fit(&hour, label)?;
        writeln!(out, "ack {i}")?;
        out.flush()?;
    }
    Err("child was never killed".into())
}

fn parent() -> Result<(), Box<dyn std::error::Error>> {
    let started = Instant::now();
    let dir = std::env::temp_dir().join(format!("hdc-crash-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // --- First life: spawn the child and SIGKILL it mid-fit. ---
    let mut victim = Command::new(std::env::current_exe()?)
        .arg("--child")
        .arg(&dir)
        .stdout(Stdio::piped())
        .spawn()?;
    let stdout = victim.stdout.take().ok_or("child stdout missing")?;
    let mut acked = 0usize;
    for line in BufReader::new(stdout).lines() {
        let line = line?;
        if line.starts_with("ack ") {
            acked += 1;
        }
        if acked >= ACKS_BEFORE_KILL {
            break;
        }
    }
    if acked < ACKS_BEFORE_KILL {
        return Err(format!("child exited after only {acked} acks").into());
    }
    victim.kill()?; // SIGKILL: no drop glue, no shutdown snapshot.
    victim.wait()?;
    println!("killed the shard after {acked} acknowledged fits");

    // --- Second life: recover from the log alone. ---
    let runtime = Runtime::spawn(blank()?, durable(&dir))?;
    let handle = runtime.handle();

    // Item memories acked before the kill are all there, bit-identical.
    let recovered_items = handle.snapshot()?;
    for (key, expected) in item_memories() {
        let found = recovered_items
            .items()
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, hv)| hv);
        assert_eq!(found, Some(&expected), "item {key} must survive the kill");
    }

    let probes: Vec<Radians> = (0..96)
        .map(|i| Radians::periodic(i as f64 / 4.0, 24.0))
        .collect();
    let recovered: Vec<usize> = probes
        .iter()
        .map(|hour| Ok::<_, HdcError>(handle.predict("probe", hour)?.label))
        .collect::<Result<_, _>>()?;
    let (_, learner) = runtime.shutdown();
    let survived = learner.observed();
    assert!(
        survived >= acked,
        "log retained {survived} fits but {acked} were acknowledged"
    );

    // The recovered state must equal a model fed exactly the retained
    // prefix of the (deterministic) training stream — no more, no less.
    let mut reference = blank()?;
    for i in 0..survived {
        let (hour, label) = observation(i);
        reference.fit(&hour, label)?;
    }
    let expected: Vec<usize> = probes.iter().map(|hour| reference.predict(hour)).collect();
    assert_eq!(
        recovered, expected,
        "recovered predictions must be bit-identical to the retained prefix"
    );

    println!(
        "recovered {survived} fits ({} unacked tail records also survived)",
        survived - acked
    );
    println!(
        "bit-identical on all {} probes in {:.2?}",
        probes.len(),
        started.elapsed()
    );
    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
