//! Durable warm restarts, end to end: train a **regression** pipeline
//! online through a running service, shut the runtime down with
//! `snapshot_on_shutdown`, spawn a *second* runtime from the snapshot
//! (`load_snapshot`), and verify over loopback TCP that the restarted
//! service answers **bit-identically** — both the `predict_value` results
//! and the restored item memory.
//!
//! This is the CI smoke test for the PR 5 snapshot path: it exercises
//! spec-as-data (the snapshot header rebuilds the encoders from
//! `(spec, seed)` alone), the trainer-accumulator capture (training
//! *resumes*, not just serving), and the `ping` health probe.
//!
//! ```text
//! cargo run --release --example warm_restart
//! ```

use std::time::Instant;

use hdc::serve::Radians;
use hdc::{Basis, BlockingClient, Enc, HdcError, Model, Pipeline, Runtime, RuntimeConfig, Server};

/// The untrained pipeline both lives of the service start from: hour-of-day
/// regression over the daily circle (the paper's circular-variable setting).
fn blank(seed: u64) -> Result<Model<Radians>, HdcError> {
    Pipeline::builder(10_000)
        .seed(seed)
        .regression(0.0, 24.0, 48)
        .basis(Basis::Circular { m: 48, r: 0.0 })
        .encoder(Enc::angle())
        .build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let started = Instant::now();
    let snapshot_path = std::env::temp_dir().join(format!(
        "hdc-warm-restart-example-{}.hdcs",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&snapshot_path);

    // --- First life: train online, store state, snapshot on shutdown. ---
    let reference = {
        // A client-side twin (same spec + seed → bit-identical encoders)
        // used to encode queries and predict the expected values.
        let mut model = blank(42)?;
        let hours: Vec<Radians> = (0..96)
            .map(|i| Radians::periodic(f64::from(i) / 4.0, 24.0))
            .collect();
        let values: Vec<f64> = (0..96).map(|i| f64::from(i) / 4.0).collect();
        model.fit_value_batch(&hours, &values)?;
        model
    };
    let first_config = RuntimeConfig {
        shards: 2,
        snapshot_on_shutdown: Some(snapshot_path.clone()),
        ..RuntimeConfig::default()
    };
    let runtime = Runtime::spawn(blank(42)?, first_config)?;
    let server = Server::spawn("127.0.0.1:0", runtime.handle())?;
    let mut client = BlockingClient::connect(server.local_addr())?;

    // Teach the service the hour-of-day identity entirely over the wire…
    let hours: Vec<Radians> = (0..96)
        .map(|i| Radians::periodic(f64::from(i) / 4.0, 24.0))
        .collect();
    for (i, hour) in hours.iter().enumerate() {
        client.fit_value(&reference.encode(hour), f64::from(i as u32) / 4.0)?;
    }
    let generation = client.refresh()?;
    // …store a per-station profile in the sharded item memory…
    let profile = reference.encode(&Radians::periodic(7.5, 24.0));
    client.insert("station-7", &profile)?;
    // …and record what the first life serves.
    let first_answers: Vec<f64> = hours
        .iter()
        .map(|h| {
            client
                .predict_value("probe", &reference.encode(h))
                .map(|p| p.value)
        })
        .collect::<Result<_, _>>()?;
    println!(
        "first life: generation {generation}, {} values served, snapshot -> {}",
        first_answers.len(),
        snapshot_path.display()
    );
    server.shutdown();
    runtime.shutdown(); // writes the snapshot
    assert!(snapshot_path.exists(), "shutdown must write the snapshot");

    // --- Second life: spawn from the snapshot, serve warm. --------------
    let second_config = RuntimeConfig {
        shards: 2,
        load_snapshot: Some(snapshot_path.clone()),
        ..RuntimeConfig::default()
    };
    let runtime = Runtime::spawn(blank(42)?, second_config)?;
    let server = Server::spawn("127.0.0.1:0", runtime.handle())?;
    let mut client = BlockingClient::connect(server.local_addr())?;

    // The ping probe shows a freshly spawned runtime (small uptime)
    // already publishing generation 0 of the *restored* head.
    let (_, uptime_us) = client.ping()?;
    println!("second life: up {uptime_us} µs before the first prediction");

    // Without a single fit_value, the restarted service answers
    // bit-identically to the first life — and to the direct model.
    let mut checked = 0;
    for (hour, &first) in hours.iter().zip(&first_answers) {
        let served = client
            .predict_value("probe", &reference.encode(hour))?
            .value;
        assert_eq!(served, first, "warm restart must not change answers");
        assert_eq!(
            served,
            reference.predict_value(hour),
            "and must match the model"
        );
        checked += 1;
    }
    // The item memory came back too: re-inserting reports a replacement.
    assert!(
        client.insert("station-7", &profile)?,
        "restored item memory must already hold the profile"
    );
    // Training *resumes* from the restored accumulators: one more
    // observation on both the service and the reference twin keeps them
    // in lockstep.
    let mut twin = reference;
    let extra = Radians::periodic(13.25, 24.0);
    client.fit_value(&twin.encode(&extra), 13.25)?;
    client.refresh()?;
    twin.fit_value(&extra, 13.25)?;
    let resumed = client.predict_value("probe", &twin.encode(&extra))?.value;
    assert_eq!(
        resumed,
        twin.predict_value(&extra),
        "resumed training diverged"
    );

    println!(
        "warm restart verified: {checked} values bit-identical, training resumed, {:?} total",
        started.elapsed()
    );
    server.shutdown();
    runtime.shutdown();
    std::fs::remove_file(&snapshot_path)?;
    Ok(())
}
