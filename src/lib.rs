//! # hdc — hyperdimensional computing with circular basis-hypervectors
//!
//! Facade crate for the reproduction of *"An Extension to Basis-Hypervectors
//! for Learning from Circular Data in Hyperdimensional Computing"* (Nunes,
//! Heddes, Givargis & Nicolau, DAC 2023). It re-exports every sub-crate of
//! the workspace:
//!
//! * `core` ([`hdc_core`]) — packed binary hypervectors, the three HDC
//!   operations, accumulators, item memory, a bipolar (MAP) model.
//! * `basis` ([`hdc_basis`]) — random, level (legacy + interpolation), scatter
//!   and circular basis-hypervector sets, plus the `r` randomness
//!   hyperparameter.
//! * `encode` ([`hdc_encode`]) — scalar, angle, categorical, record, sequence
//!   and n-gram encoders.
//! * `learn` ([`hdc_learn`]) — centroid and adaptive classifiers, associative
//!   regression, metrics and splits.
//! * [`dirstats`] — directional statistics (von Mises, circular descriptive
//!   statistics, circular–linear correlation).
//! * `datasets` ([`hdc_datasets`]) — synthetic surrogates of the paper's three
//!   evaluation datasets.
//! * `hash` ([`hdc_hash`]) — hyperdimensional consistent hashing, the original
//!   application of circular hypervectors.
//! * `serve` ([`hdc_serve`]) — the unified [`Pipeline`]/[`Model`] builder API,
//!   [`ShardedModel`] serving over the consistent-hash ring, the
//!   long-running [`Runtime`] (micro-batching ingestion, versioned online
//!   learning) with its framed-TCP [`Server`]/[`BlockingClient`] front-end,
//!   and the multi-process [`ClusterRouter`]/[`ClusterServer`] that routes
//!   keys across shard processes and warm-joins fresh shards by streaming
//!   [`Snapshot`]s.
//!
//! # Quickstart
//!
//! A full classifier through the builder — basis, encoder and learner behind
//! one object:
//!
//! ```
//! use hdc::{Basis, Enc, Pipeline, Radians};
//!
//! let mut model = Pipeline::builder(10_000)
//!     .seed(42)
//!     .basis(Basis::Circular { m: 24, r: 0.0 })
//!     .encoder(Enc::angle())
//!     .build()?;
//! let hours: Vec<Radians> = (0..24).map(|h| Radians::periodic(h as f64, 24.0)).collect();
//! let labels: Vec<usize> = (0..24).map(|h| usize::from(h >= 12)).collect();
//! model.fit_batch(&hours, &labels)?;
//! assert_eq!(model.predict(&Radians::periodic(3.0, 24.0)), 0);
//! # Ok::<(), hdc::HdcError>(())
//! ```
//!
//! The underlying pieces stay directly usable, e.g. the basis sets:
//!
//! ```
//! use hdc::basis::{BasisSet, CircularBasis};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! // Twelve hypervectors arranged on a circle: opposite points are
//! // quasi-orthogonal, neighbours are highly similar, and the set wraps.
//! let circle = CircularBasis::new(12, 10_000, &mut rng)?;
//! let d_neighbor = circle.get(0).normalized_hamming(circle.get(1));
//! let d_opposite = circle.get(0).normalized_hamming(circle.get(6));
//! assert!(d_neighbor < 0.15);
//! assert!((d_opposite - 0.5).abs() < 0.05);
//! # Ok::<(), hdc::HdcError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hdc_basis as basis;
pub use hdc_core as core;
pub use hdc_datasets as datasets;
pub use hdc_encode as encode;
pub use hdc_hash as hash;
pub use hdc_learn as learn;
pub use hdc_serve as serve;

pub use dirstats;

pub use hdc_core::{
    BinaryHypervector, BipolarHypervector, HdcError, HvMut, HvRef, HypervectorBatch, ItemMemory,
    MajorityAccumulator, TieBreak, DEFAULT_DIMENSION,
};
pub use hdc_encode::{Encoder, FeatureRecordEncoder, FieldSpec, Radians};
pub use hdc_serve::{
    Basis, BatchPolicy, BlockingClient, ClientConfig, ClusterRouter, ClusterServer,
    DurabilityConfig, Enc, EncSpec, FanOut, GroupCommitConfig, ItemStore, LocalShard, Model,
    PagedStore, Pipeline, PipelineSpec, Prediction, RemoteShard, ResidentStore, RingConfig,
    Runtime, RuntimeConfig, RuntimeHandle, RuntimeStats, Server, ShardBackend, ShardedModel,
    Snapshot, SyncPolicy, Task, ValuePrediction, WalCodec,
};
