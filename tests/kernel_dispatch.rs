//! Bit-identity of every dispatched kernel backend against the scalar
//! reference.
//!
//! The dispatch layer (`hdc::core::kernels::dispatch`) publishes each
//! backend as a table of plain function pointers, so this suite can call
//! every backend the running CPU supports — not just the selected one —
//! and assert it produces **exactly** the scalar result: same bits, same
//! sums, same tie-break consultations. Dimensions deliberately sweep
//! non-multiples of 64 so ragged tail words (the part SIMD kernels
//! handle with scalar remainders) are always exercised.

use hdc::core::kernels::dispatch::{available, table, Backend};
use hdc::BinaryHypervector;
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A packed hypervector with a clean tail plus a matching counter slice.
fn inputs(dim: usize, seed: u64) -> (Vec<u64>, Vec<u64>, Vec<i32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = BinaryHypervector::random(dim, &mut rng).as_words().to_vec();
    let b = BinaryHypervector::random(dim, &mut rng).as_words().to_vec();
    let counts: Vec<i32> = (0..dim)
        .map(|_| rng.random_range(-10_000..10_000))
        .collect();
    (a, b, counts)
}

fn simd_backends() -> Vec<Backend> {
    available()
        .into_iter()
        .filter(|&b| b != Backend::Scalar)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `xor` and `xor_into` agree with scalar word for word.
    #[test]
    fn xor_parity(dim in 1usize..=4096, seed in 0u64..1000) {
        let scalar = table(Backend::Scalar).unwrap();
        let (a, b, _) = inputs(dim, seed);
        let mut expected = vec![0u64; a.len()];
        (scalar.xor)(&a, &b, &mut expected);
        let mut expected_into = a.clone();
        (scalar.xor_into)(&mut expected_into, &b);
        prop_assert_eq!(&expected, &expected_into);
        for backend in simd_backends() {
            let t = table(backend).unwrap();
            let mut out = vec![0u64; a.len()];
            (t.xor)(&a, &b, &mut out);
            prop_assert_eq!(&out, &expected, "xor backend={}", backend);
            let mut into = a.clone();
            (t.xor_into)(&mut into, &b);
            prop_assert_eq!(&into, &expected, "xor_into backend={}", backend);
        }
    }

    /// Popcount and hamming agree with scalar exactly.
    #[test]
    fn popcount_parity(dim in 1usize..=4096, seed in 0u64..1000) {
        let scalar = table(Backend::Scalar).unwrap();
        let (a, b, _) = inputs(dim, seed);
        let expected_ones = (scalar.count_ones)(&a);
        let expected_ham = (scalar.hamming)(&a, &b);
        for backend in simd_backends() {
            let t = table(backend).unwrap();
            prop_assert_eq!((t.count_ones)(&a), expected_ones, "count_ones backend={}", backend);
            prop_assert_eq!((t.hamming)(&a, &b), expected_ham, "hamming backend={}", backend);
        }
    }

    /// `accumulate` produces identical counters for ordinary weights,
    /// including negatives, from an arbitrary starting counter state.
    #[test]
    fn accumulate_parity(
        dim in 1usize..=4096,
        seed in 0u64..1000,
        weight in -5000i32..=5000,
    ) {
        let (a, _, counts) = inputs(dim, seed);
        let scalar = table(Backend::Scalar).unwrap();
        let mut expected = counts.clone();
        (scalar.accumulate)(&mut expected, &a, weight);
        for backend in simd_backends() {
            let t = table(backend).unwrap();
            let mut got = counts.clone();
            (t.accumulate)(&mut got, &a, weight);
            prop_assert_eq!(&got, &expected, "accumulate backend={}", backend);
        }
    }

    /// `accumulate` with extreme weights (the scalar doubling-shortcut
    /// fallback) also matches: i32::MIN and i32::MAX stress the widened
    /// SIMD adds.
    #[test]
    fn accumulate_extreme_weight_parity(dim in 1usize..=512, seed in 0u64..1000) {
        let (a, _, _) = inputs(dim, seed);
        // Extreme weights only avoid counter overflow (a caller-side
        // contract) when starting from zeroed counters.
        let counts = vec![0i32; dim];
        let scalar = table(Backend::Scalar).unwrap();
        for weight in [1i32 << 30, -(1i32 << 30), i32::MAX, i32::MIN + 1] {
            let mut expected = counts.clone();
            (scalar.accumulate)(&mut expected, &a, weight);
            for backend in simd_backends() {
                let t = table(backend).unwrap();
                let mut got = counts.clone();
                (t.accumulate)(&mut got, &a, weight);
                prop_assert_eq!(&got, &expected, "backend={} weight={}", backend, weight);
            }
        }
    }

    /// The two summation kernels return the identical `i64`, including at
    /// counter extremes where a 32-bit reassociation would overflow.
    #[test]
    fn sum_kernel_parity(dim in 1usize..=4096, seed in 0u64..1000) {
        let (a, b, mut counts) = inputs(dim, seed);
        // Plant extremes at fixed positions so ragged tails see them too.
        counts[0] = i32::MIN;
        if dim > 1 {
            counts[dim - 1] = i32::MAX;
        }
        let scalar = table(Backend::Scalar).unwrap();
        let expected_dot = (scalar.dot_bipolar)(&counts, &a);
        let expected_masked = (scalar.masked_sum)(&counts, &a, &b);
        for backend in simd_backends() {
            let t = table(backend).unwrap();
            prop_assert_eq!((t.dot_bipolar)(&counts, &a), expected_dot,
                "dot_bipolar backend={}", backend);
            prop_assert_eq!((t.masked_sum)(&counts, &a, &b), expected_masked,
                "masked_sum backend={}", backend);
        }
    }

    /// `masked_sum` parity across the density spectrum: the AVX2 table
    /// entry picks dense-SIMD or the sparse walk per call from the
    /// intersection popcount (`dispatch::masked_sum_prefers_dense`), so
    /// this sweep drives masks from near-empty to near-full across
    /// dimensions on both sides of the 32k policy boundary — both
    /// branches must return the identical `i64`.
    #[test]
    fn masked_sum_density_sweep_parity(seed in 0u64..1000, sparsity in 0usize..4) {
        let scalar = table(Backend::Scalar).unwrap();
        for dim in [96usize, 10_000, 33_000] {
            let mut rng = StdRng::seed_from_u64(seed ^ dim as u64);
            // AND-fold `sparsity` extra vectors to thin the masks toward
            // density 2^-(sparsity+1); sparsity 0 leaves them ~50% dense.
            let thin = |rng: &mut StdRng| {
                let mut words = BinaryHypervector::random(dim, rng).as_words().to_vec();
                for _ in 0..sparsity {
                    let other = BinaryHypervector::random(dim, rng);
                    for (w, o) in words.iter_mut().zip(other.as_words()) {
                        *w &= o;
                    }
                }
                words
            };
            let a = thin(&mut rng);
            let b = thin(&mut rng);
            let counts: Vec<i32> = (0..dim).map(|_| rng.random_range(-10_000..10_000)).collect();
            let expected = (scalar.masked_sum)(&counts, &a, &b);
            for backend in simd_backends() {
                let t = table(backend).unwrap();
                prop_assert_eq!((t.masked_sum)(&counts, &a, &b), expected,
                    "masked_sum backend={} dim={} sparsity={}", backend, dim, sparsity);
            }
        }
    }

    /// `majority_into` resolves every sign identically AND consults the
    /// tie-break closure for the same indices in the same (ascending)
    /// order on every backend.
    #[test]
    fn majority_parity(dim in 1usize..=4096, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Narrow counter range so exact zeros (ties) are common.
        let counts: Vec<i32> = (0..dim).map(|_| rng.random_range(-2i32..=2)).collect();
        let scalar = table(Backend::Scalar).unwrap();
        let mut expected = vec![0u64; dim.div_ceil(64)];
        let mut expected_ties = Vec::new();
        (scalar.majority_into)(&counts, &mut expected, &mut |i| {
            expected_ties.push(i);
            i % 3 == 0
        });
        for backend in simd_backends() {
            let t = table(backend).unwrap();
            let mut got = vec![!0u64; dim.div_ceil(64)]; // dirty scratch
            let mut ties = Vec::new();
            (t.majority_into)(&counts, &mut got, &mut |i| {
                ties.push(i);
                i % 3 == 0
            });
            prop_assert_eq!(&got, &expected, "majority bits backend={}", backend);
            prop_assert_eq!(&ties, &expected_ties, "tie order backend={}", backend);
        }
    }
}

/// The selected table is one of the available ones, and the public
/// `kernels::*` wrappers agree with calling its pointers directly.
#[test]
fn public_wrappers_route_through_selected_table() {
    use hdc::core::kernels;
    let selected = kernels::dispatch::selected();
    assert!(available().contains(&selected.backend));
    let (a, b, counts) = inputs(777, 42);
    assert_eq!(kernels::hamming(&a, &b), (selected.hamming)(&a, &b));
    assert_eq!(
        kernels::masked_sum(&counts, &a, &b),
        (selected.masked_sum)(&counts, &a, &b)
    );
}
