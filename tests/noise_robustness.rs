//! Failure-injection integration tests: HDC's holographic representation
//! should degrade gracefully under bit errors, across the whole stack.

use hdc::basis::BasisKind;
use hdc::core::BinaryHypervector;
use hdc::encode::ScalarEncoder;
use hdc::learn::CentroidClassifier;
use hdc::ItemMemory;
use rand::{rngs::StdRng, SeedableRng};

const DIM: usize = 10_000;

#[test]
fn classifier_survives_query_corruption() {
    let mut rng = StdRng::seed_from_u64(1);
    let protos: Vec<BinaryHypervector> = (0..6)
        .map(|_| BinaryHypervector::random(DIM, &mut rng))
        .collect();
    let train: Vec<(BinaryHypervector, usize)> = (0..120)
        .map(|i| (protos[i % 6].corrupt(0.1, &mut rng), i % 6))
        .collect();
    let model =
        CentroidClassifier::fit(train.iter().map(|(h, l)| (h, *l)), 6, DIM, &mut rng).unwrap();

    // Accuracy under increasing query corruption: graceful, not cliff-edge.
    let mut accuracies = Vec::new();
    for noise in [0.1, 0.2, 0.3, 0.4] {
        let correct = (0..300)
            .filter(|i| {
                let class = i % 6;
                model.predict(&protos[class].corrupt(noise, &mut rng)) == class
            })
            .count();
        accuracies.push(correct as f64 / 300.0);
    }
    assert!(accuracies[0] > 0.99, "10% noise: {}", accuracies[0]);
    assert!(accuracies[1] > 0.99, "20% noise: {}", accuracies[1]);
    assert!(accuracies[2] > 0.95, "30% noise: {}", accuracies[2]);
    // Even at 40% (80% of the way to pure noise) the model retains signal.
    assert!(accuracies[3] > 0.5, "40% noise: {}", accuracies[3]);
}

#[test]
fn class_vector_corruption_degrades_gracefully() {
    let mut rng = StdRng::seed_from_u64(2);
    let protos: Vec<BinaryHypervector> = (0..4)
        .map(|_| BinaryHypervector::random(DIM, &mut rng))
        .collect();
    let train: Vec<(BinaryHypervector, usize)> = (0..80)
        .map(|i| (protos[i % 4].corrupt(0.1, &mut rng), i % 4))
        .collect();
    let model =
        CentroidClassifier::fit(train.iter().map(|(h, l)| (h, *l)), 4, DIM, &mut rng).unwrap();

    // Corrupt the stored class vectors themselves (memory faults in a
    // deployed model) and re-evaluate.
    let corrupted = CentroidClassifier::from_class_vectors(
        (0..4)
            .map(|c| model.class_vector(c).corrupt(0.15, &mut rng))
            .collect(),
    )
    .unwrap();
    let correct = (0..200)
        .filter(|i| {
            let class = i % 4;
            corrupted.predict(&protos[class].corrupt(0.1, &mut rng)) == class
        })
        .count();
    assert!(correct > 190, "15% model corruption: {correct}/200");
}

#[test]
fn scalar_decode_with_corrupted_levels() {
    let mut rng = StdRng::seed_from_u64(3);
    let enc = ScalarEncoder::with_levels(0.0, 100.0, 21, DIM, &mut rng).unwrap();
    for value in [0.0, 25.0, 50.0, 75.0, 100.0] {
        let noisy = enc.encode(value).corrupt(0.2, &mut rng);
        let decoded = enc.decode(&noisy);
        assert!(
            (decoded - value).abs() <= 15.0,
            "value {value} decoded to {decoded} under 20% noise"
        );
    }
}

#[test]
fn item_memory_cleanup_under_heavy_noise() {
    let mut rng = StdRng::seed_from_u64(4);
    let mut memory = ItemMemory::new();
    for i in 0..32u32 {
        memory.insert(i, BinaryHypervector::random(DIM, &mut rng));
    }
    let mut recovered = 0;
    for i in 0..32u32 {
        let noisy = memory.get(&i).unwrap().corrupt(0.35, &mut rng);
        if *memory.cleanup(&noisy).unwrap().0 == i {
            recovered += 1;
        }
    }
    assert!(recovered >= 30, "35% noise: {recovered}/32 recovered");
}

#[test]
fn all_basis_kinds_decode_under_noise() {
    for kind in [
        BasisKind::Random,
        BasisKind::Level { randomness: 0.0 },
        BasisKind::Circular { randomness: 0.0 },
    ] {
        let mut rng = StdRng::seed_from_u64(5);
        let basis = kind.build(8, DIM, &mut rng).unwrap();
        // Nearest-member decoding of corrupted members: correlated sets
        // have closer neighbours, so allow ±1 index for level/circular.
        for i in 0..8 {
            let noisy = basis.get(i).corrupt(0.1, &mut rng);
            let (found, _) = hdc::core::similarity::nearest(&noisy, basis.hypervectors()).unwrap();
            let arc = (found as isize - i as isize)
                .abs()
                .min(8 - (found as isize - i as isize).abs());
            assert!(arc <= 1, "{kind:?}: member {i} decoded to {found}");
        }
    }
}
