//! Property tests for the batched execution layer: every batch API must be
//! **bit-identical** to the per-sample loop it replaces — including at
//! dimensionalities that are not multiples of the 64-bit word size, and for
//! accumulators driven through subtraction-heavy sequences under every
//! [`TieBreak`] policy.

use hdc::core::similarity;
use hdc::encode::{Encoder, ScalarEncoder};
use hdc::learn::{CentroidClassifier, CentroidTrainer, RegressionModel};
use hdc::{BinaryHypervector, HypervectorBatch, MajorityAccumulator, TieBreak};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

proptest! {
    /// Batched encoding fills the arena with exactly the per-sample bits,
    /// for dimensions straddling word boundaries.
    #[test]
    fn encode_batch_matches_per_sample(seed in 0u64..200, dim in 1usize..200, n in 0usize..40) {
        let mut rng = StdRng::seed_from_u64(seed);
        let encoder = ScalarEncoder::with_levels(0.0, 1.0, 8, dim, &mut rng).unwrap();
        let values: Vec<f64> = (0..n).map(|_| rng.random_range(-0.2f64..1.2)).collect();
        let batch = encoder.encode_batch(&values);
        prop_assert_eq!(batch.len(), n);
        prop_assert_eq!(batch.dim(), dim);
        for (row, &x) in batch.rows().zip(&values) {
            prop_assert_eq!(row.to_hypervector(), encoder.encode(x).clone());
        }
    }

    /// The arena round-trips owned hypervectors exactly at any dimension.
    #[test]
    fn arena_round_trip_is_lossless(seed in 0u64..200, dim in 1usize..300, n in 1usize..20) {
        let mut rng = StdRng::seed_from_u64(seed);
        let items: Vec<BinaryHypervector> =
            (0..n).map(|_| BinaryHypervector::random(dim, &mut rng)).collect();
        let batch = HypervectorBatch::from_vectors(&items).unwrap();
        prop_assert_eq!(batch.to_vectors(), items);
    }

    /// Parallel classification (slice and arena forms) returns the same
    /// labels, in the same order, as the serial loop.
    #[test]
    fn predict_batch_matches_serial(seed in 0u64..100, dim in 65usize..400, classes in 2usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let protos: Vec<BinaryHypervector> =
            (0..classes).map(|_| BinaryHypervector::random(dim, &mut rng)).collect();
        let train: Vec<(BinaryHypervector, usize)> = (0..classes * 6)
            .map(|i| (protos[i % classes].corrupt(0.2, &mut rng), i % classes))
            .collect();
        let model = CentroidClassifier::fit(
            train.iter().map(|(h, l)| (h, *l)), classes, dim, &mut rng).unwrap();
        let queries: Vec<BinaryHypervector> =
            (0..17).map(|i| protos[i % classes].corrupt(0.2, &mut rng)).collect();

        let serial: Vec<usize> = queries.iter().map(|q| model.predict(q)).collect();
        prop_assert_eq!(model.predict_batch_par(&queries), serial.clone());
        let arena = HypervectorBatch::from_vectors(&queries).unwrap();
        prop_assert_eq!(model.predict_rows(&arena), serial);
    }

    /// Parallel batch fitting merges per-worker partial accumulators into
    /// exactly the serial counters, so with equal RNG streams the finished
    /// models match bit for bit.
    #[test]
    fn fit_batch_matches_serial_fit(seed in 0u64..100, dim in 1usize..300, classes in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let samples: Vec<BinaryHypervector> =
            (0..classes * 5).map(|_| BinaryHypervector::random(dim, &mut rng)).collect();
        let labels: Vec<usize> = (0..samples.len()).map(|i| i % classes).collect();
        let batch = HypervectorBatch::from_vectors(&samples).unwrap();

        let mut serial = CentroidTrainer::new(classes, dim).unwrap();
        for (hv, &label) in samples.iter().zip(&labels) {
            serial.observe(hv, label).unwrap();
        }
        let mut batched = CentroidTrainer::new(classes, dim).unwrap();
        batched.observe_batch(&batch, &labels).unwrap();
        prop_assert_eq!(batched.counts(), serial.counts());

        let mut rng_a = StdRng::seed_from_u64(seed ^ 0xAB);
        let mut rng_b = StdRng::seed_from_u64(seed ^ 0xAB);
        prop_assert_eq!(batched.finish(&mut rng_a), serial.finish(&mut rng_b));
    }

    /// Subtraction-heavy accumulator sequences: the word-slice accumulate
    /// kernel agrees with a naive per-bit reference, and every `TieBreak`
    /// policy resolves the (frequent) zero counters identically.
    #[test]
    fn accumulator_parity_under_subtraction(
        seed in 0u64..300,
        dim in 1usize..200,
        ops in proptest::collection::vec(0usize..4, 1..24),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pool: Vec<BinaryHypervector> =
            (0..4).map(|_| BinaryHypervector::random(dim, &mut rng)).collect();
        let mut acc = MajorityAccumulator::new(dim);
        let mut reference = vec![0i64; dim];
        for (step, &op) in ops.iter().enumerate() {
            let hv = &pool[step % pool.len()];
            // Bias towards subtraction so exact ties are common.
            let weight: i32 = match op {
                0 => 1,
                1 => -1,
                2 => -2,
                _ => 3,
            };
            acc.push_weighted(hv, weight);
            for (i, bit) in hv.bits().enumerate() {
                reference[i] += i64::from(if bit { weight } else { -weight });
            }
        }
        for (i, &c) in acc.counts().iter().enumerate() {
            prop_assert_eq!(i64::from(c), reference[i]);
        }
        for tie in [TieBreak::Zero, TieBreak::One, TieBreak::Alternate] {
            let expected = BinaryHypervector::from_fn(dim, |i| match reference[i].cmp(&0) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Less => false,
                std::cmp::Ordering::Equal => match tie {
                    TieBreak::Zero => false,
                    TieBreak::One => true,
                    TieBreak::Alternate => i % 2 == 0,
                },
            });
            prop_assert_eq!(acc.finalize(tie), expected);
        }
    }

    /// The flat `SimilarityMatrix` agrees with a naive per-pair reference
    /// (every entry, both triangles, unit diagonal).
    #[test]
    fn similarity_matrix_matches_naive_reference(seed in 0u64..100, n in 0usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let items: Vec<BinaryHypervector> =
            (0..n).map(|_| BinaryHypervector::random(257, &mut rng)).collect();
        let flat = similarity::pairwise_similarity_matrix(&items);
        prop_assert_eq!(flat.len(), n);
        for i in 0..n {
            for j in 0..n {
                let expected = if i == j { 1.0 } else { items[i].similarity(&items[j]) };
                prop_assert_eq!(flat.get(i, j), expected);
            }
        }
        // The nested copy-out keeps the exact same values, row for row.
        let nested = flat.to_nested();
        for (i, row) in nested.iter().enumerate() {
            prop_assert_eq!(row.as_slice(), flat.row(i));
        }
    }
}

/// Non-proptest check: parallel regression prediction is bit-identical to
/// the serial loop on a realistic encoder pipeline.
#[test]
fn regression_parallel_prediction_matches_serial() {
    let mut rng = StdRng::seed_from_u64(0x9E6);
    let input = ScalarEncoder::with_levels(0.0, 1.0, 32, 4_099, &mut rng).unwrap();
    let label = ScalarEncoder::with_levels(0.0, 1.0, 32, 4_099, &mut rng).unwrap();
    let model = RegressionModel::fit(
        (0..80).map(|i| {
            let x = i as f64 / 79.0;
            (input.encode(x), x)
        }),
        label,
        &mut rng,
    )
    .unwrap();
    let queries: Vec<BinaryHypervector> = (0..31)
        .map(|i| input.encode(i as f64 / 30.0).corrupt(0.05, &mut rng))
        .collect();
    let serial: Vec<f64> = queries.iter().map(|q| model.predict(q)).collect();
    assert_eq!(model.predict_batch_par(&queries), serial);
    let arena = HypervectorBatch::from_vectors(&queries).unwrap();
    assert_eq!(model.predict_rows(&arena), serial);
}
