//! Smoke coverage of the workspace surface itself: the facade crate must
//! re-export every sub-crate under the documented module names, and each
//! re-export must actually resolve to the sub-crate's key types. A rename
//! or dropped `pub use` in `src/lib.rs` fails this file at compile time.

use rand::{rngs::StdRng, SeedableRng};

#[test]
fn facade_reexports_every_subcrate() {
    let mut rng = StdRng::seed_from_u64(99);

    // hdc::core
    let hv: hdc::core::BinaryHypervector = hdc::core::BinaryHypervector::random(256, &mut rng);
    assert_eq!(hv.bind(&hv), hdc::core::BinaryHypervector::zeros(256));

    // hdc::basis
    use hdc::basis::BasisSet as _;
    let basis = hdc::basis::RandomBasis::new(4, 256, &mut rng).unwrap();
    assert_eq!(basis.len(), 4);

    // hdc::encode
    let enc = hdc::encode::ScalarEncoder::with_levels(0.0, 1.0, 5, 256, &mut rng).unwrap();
    assert_eq!(enc.encode(0.0).dim(), 256);

    // hdc::learn
    let labelled = [(hv.clone(), 0usize), (hv.clone(), 1)];
    let model = hdc::learn::CentroidClassifier::fit(
        labelled.iter().map(|(h, l)| (h, *l)),
        2,
        256,
        &mut rng,
    )
    .unwrap();
    let _ = model.predict(&hv);

    // hdc::datasets (type resolution is the point; generation is covered
    // by the dataset crate's own tests)
    let _config: Option<hdc::datasets::beijing::BeijingConfig> = None;

    // hdc::hash
    let ring: hdc::hash::HdcHashRing<String> =
        hdc::hash::HdcHashRing::new(16, 256, &mut rng).unwrap();
    assert_eq!(ring.node_count(), 0);

    // hdc::dirstats
    let mean = hdc::dirstats::descriptive::circular_mean(&[0.1, 0.2]).unwrap();
    assert!((mean - 0.15).abs() < 1e-9);

    // hdc::serve — the unified builder API and sharded serving.
    let mut pipeline_model = hdc::serve::Pipeline::builder(256)
        .seed(1)
        .basis(hdc::serve::Basis::Circular { m: 8, r: 0.0 })
        .encoder(hdc::serve::Enc::scalar(0.0, 1.0))
        .build()
        .unwrap();
    pipeline_model.fit_batch(&[0.1f64, 0.9], &[0, 1]).unwrap();
    let fleet: hdc::ShardedModel<u64> =
        hdc::ShardedModel::from_model(&pipeline_model, 2, 0).unwrap();
    assert_eq!(fleet.shard_count(), 2);
    let _ = fleet.predict(&pipeline_model.encode(&0.1));
    let _: hdc::serve::RingConfig = hdc::RingConfig::default();

    // Root-level convenience re-exports.
    let _: usize = hdc::DEFAULT_DIMENSION;
    let _: hdc::Basis = hdc::Basis::Random { m: 4 };
    let _: hdc::FieldSpec = hdc::FieldSpec::angle();
    let mut acc = hdc::MajorityAccumulator::new(256);
    acc.push(&hv);
    let _ = acc.finalize(hdc::TieBreak::Zero);
}
