//! End-to-end tests of the multi-process shard cluster (PR 6).
//!
//! Acceptance criteria covered here:
//!
//! * **Cluster bit-identity** — N shard `Runtime` processes behind a
//!   [`ClusterRouter`] (loopback TCP, real wire frames) answer
//!   bit-identically to the unsharded `Model` *and* the in-process
//!   `ShardedModel`, for classification and regression, for any shard
//!   count — and key→shard routing matches `ShardedModel::shard_of`
//!   exactly.
//! * **Warm joins under churn** — after one shard leaves and a blank
//!   replacement joins warm via snapshot streaming, predictions are
//!   still bit-identical and every stored item survived, even with
//!   concurrent client traffic throughout.
//! * **Bounded timeouts** — a dead or unresponsive shard surfaces as
//!   `HdcError::Timeout`/`HdcError::Transport` instead of hanging the
//!   router.

use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use hdc::serve::Radians;
use hdc::{
    Basis, BatchPolicy, BinaryHypervector, BlockingClient, ClientConfig, ClusterRouter,
    ClusterServer, Enc, HdcError, Model, Pipeline, RemoteShard, RingConfig, Runtime, RuntimeConfig,
    Server, ShardBackend, ShardedModel,
};
use proptest::prelude::*;

const DIM: usize = 256;

/// A small trained angle pipeline (day/night over the 24-hour circle).
/// Deterministic per seed, so every call yields a bit-identical model —
/// which is how each shard process gets the same replicated head.
fn trained_model(seed: u64) -> Model<Radians> {
    let mut model = Pipeline::builder(DIM)
        .seed(seed)
        .classes(2)
        .basis(Basis::Circular { m: 24, r: 0.0 })
        .encoder(Enc::angle())
        .build()
        .expect("valid pipeline");
    let hours: Vec<Radians> = (0..48)
        .map(|i| Radians::periodic(f64::from(i) / 2.0, 24.0))
        .collect();
    let labels: Vec<usize> = (0..48).map(|i| usize::from(i >= 24)).collect();
    model
        .fit_batch(&hours, &labels)
        .expect("valid training set");
    model
}

/// The regression twin: hour-of-day as the real-valued label.
fn trained_value_model(seed: u64) -> Model<Radians> {
    let mut model = Pipeline::builder(DIM)
        .seed(seed)
        .regression(0.0, 24.0, 24)
        .basis(Basis::Circular { m: 24, r: 0.0 })
        .encoder(Enc::angle())
        .build()
        .expect("valid pipeline");
    let hours: Vec<Radians> = (0..48)
        .map(|i| Radians::periodic(f64::from(i) / 2.0, 24.0))
        .collect();
    let values: Vec<f64> = (0..48).map(|i| f64::from(i) / 2.0).collect();
    model
        .fit_value_batch(&hours, &values)
        .expect("valid training set");
    model
}

fn shard_config(name: &str) -> RuntimeConfig {
    RuntimeConfig {
        name: name.to_owned(),
        shards: 1,
        policy: BatchPolicy {
            max_batch: 8,
            max_wait: Duration::from_micros(200),
        },
        refresh_every: 0,
        ..RuntimeConfig::default()
    }
}

/// Spawns one shard *process* stand-in: a runtime with its own framed-TCP
/// server on an ephemeral loopback port.
fn spawn_shard(model: Model<Radians>, name: &str) -> (Runtime<Radians>, Server) {
    let runtime = Runtime::spawn(model, shard_config(name)).expect("valid runtime");
    let server = Server::spawn("127.0.0.1:0", runtime.handle()).expect("ephemeral port");
    (runtime, server)
}

/// Fast-failing client deadlines for tests: a hung shard must surface in
/// milliseconds, not the default 10 s.
fn test_client_config() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_secs(2),
        read_timeout: Some(Duration::from_secs(5)),
        write_timeout: Some(Duration::from_secs(5)),
        connect_retries: 2,
        retry_backoff: Duration::from_millis(10),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Acceptance criterion: a cluster of N shard runtimes behind the
    /// router — loopback TCP, real wire frames — answers bit-identically
    /// to the unsharded model and the in-process `ShardedModel`, and
    /// routes every key to the same shard id `ShardedModel::shard_of`
    /// picks.
    #[test]
    fn cluster_predictions_are_bit_identical_to_the_sharded_model(
        seed in 0u64..1_000,
        shards in 1usize..5,
        ring_seed in 0u64..100,
    ) {
        let model = trained_model(seed);
        let inputs: Vec<Radians> = (0..40).map(|i| Radians(f64::from(i) * 0.17)).collect();
        let queries = model.encode_batch(&inputs);
        let expected = model.predict_encoded(&queries);
        let keys: Vec<String> = (0..inputs.len()).map(|i| format!("user-{i}")).collect();
        let fleet: ShardedModel<String> =
            ShardedModel::from_model(&model, shards, ring_seed).expect("valid fleet");
        prop_assert_eq!(&fleet.predict_batch(&keys, &queries).expect("routable"), &expected);

        // Same seed + training → every shard process owns a bit-identical
        // replicated head.
        let fleet_procs: Vec<(Runtime<Radians>, Server)> = (0..shards)
            .map(|i| spawn_shard(trained_model(seed), &format!("shard-{i}")))
            .collect();
        let backends: Vec<Box<dyn ShardBackend>> = fleet_procs
            .iter()
            .map(|(_, server)| {
                let addr = server.local_addr().to_string();
                let shard = RemoteShard::connect_with(&addr, test_client_config())
                    .expect("loopback connect");
                Box::new(shard) as Box<dyn ShardBackend>
            })
            .collect();
        let mut router = ClusterRouter::new(backends, RingConfig::default(), ring_seed)
            .expect("valid cluster");
        prop_assert_eq!(router.shard_count(), shards);
        prop_assert_eq!(router.dim(), DIM);

        // Routing parity: the router's ring is the fleet's ring.
        for key in &keys {
            prop_assert_eq!(router.shard_of(key), fleet.shard_of(key));
        }

        // Prediction parity: batch and single paths.
        let pairs: Vec<(String, BinaryHypervector)> = keys
            .iter()
            .cloned()
            .zip(queries.rows().map(|row| row.to_hypervector()))
            .collect();
        let batched = router.predict_batch(&pairs).expect("routable");
        prop_assert_eq!(
            batched.iter().map(|p| p.label).collect::<Vec<_>>(),
            expected.clone()
        );
        for ((key, hv), &label) in pairs.iter().zip(&expected) {
            let prediction = router.predict(key, hv).expect("routable");
            prop_assert_eq!(prediction.label, label);
        }

        for (runtime, server) in fleet_procs {
            server.shutdown();
            runtime.shutdown();
        }
    }

    /// The regression twin: served f64 values over the cluster are
    /// bit-identical to the unsharded model's and the in-process fleet's.
    #[test]
    fn cluster_value_predictions_are_bit_identical_to_the_sharded_model(
        seed in 0u64..1_000,
        shards in 1usize..4,
    ) {
        let model = trained_value_model(seed);
        let inputs: Vec<Radians> = (0..30).map(|i| Radians(f64::from(i) * 0.21)).collect();
        let queries = model.encode_batch(&inputs);
        let expected = model.predict_values_encoded(&queries);
        let keys: Vec<String> = (0..inputs.len()).map(|i| format!("station-{i}")).collect();
        let fleet: ShardedModel<String> =
            ShardedModel::from_model(&model, shards, 0).expect("valid fleet");
        prop_assert_eq!(&fleet.predict_values(&keys, &queries).expect("routable"), &expected);

        let fleet_procs: Vec<(Runtime<Radians>, Server)> = (0..shards)
            .map(|i| spawn_shard(trained_value_model(seed), &format!("shard-{i}")))
            .collect();
        let backends: Vec<Box<dyn ShardBackend>> = fleet_procs
            .iter()
            .map(|(_, server)| {
                let addr = server.local_addr().to_string();
                let shard = RemoteShard::connect_with(&addr, test_client_config())
                    .expect("loopback connect");
                Box::new(shard) as Box<dyn ShardBackend>
            })
            .collect();
        let mut router =
            ClusterRouter::new(backends, RingConfig::default(), 0).expect("valid cluster");

        let pairs: Vec<(String, BinaryHypervector)> = keys
            .iter()
            .cloned()
            .zip(queries.rows().map(|row| row.to_hypervector()))
            .collect();
        let served = router.predict_value_batch(&pairs).expect("routable");
        prop_assert_eq!(
            served.iter().map(|p| p.value).collect::<Vec<_>>(),
            expected
        );

        for (runtime, server) in fleet_procs {
            server.shutdown();
            runtime.shutdown();
        }
    }
}

/// Acceptance criterion: shard leave + warm join under live traffic. A
/// cluster front-end serves concurrent clients while one shard leaves and
/// a **blank** replacement joins warm via snapshot streaming; predictions
/// stay bit-identical throughout, the replacement answers with the
/// trained head it never saw trained, and every stored item survives the
/// churn.
#[test]
fn warm_join_and_leave_under_live_traffic_keep_bit_identity() {
    let seed = 77;
    let model = trained_model(seed);
    let inputs: Vec<Radians> = (0..40).map(|i| Radians(f64::from(i) * 0.13)).collect();
    let queries = model.encode_batch(&inputs);
    let expected = Arc::new(model.predict_encoded(&queries));
    let keys: Vec<String> = (0..inputs.len()).map(|i| format!("user-{i}")).collect();
    let pairs: Arc<Vec<(String, BinaryHypervector)>> = Arc::new(
        keys.iter()
            .cloned()
            .zip(queries.rows().map(|row| row.to_hypervector()))
            .collect(),
    );

    // Three shard processes, a router over them, and a cluster front-end.
    let mut fleet_procs: Vec<(Runtime<Radians>, Server)> = (0..3)
        .map(|i| spawn_shard(trained_model(seed), &format!("shard-{i}")))
        .collect();
    let backends: Vec<Box<dyn ShardBackend>> = fleet_procs
        .iter()
        .map(|(_, server)| {
            let addr = server.local_addr().to_string();
            let shard =
                RemoteShard::connect_with(&addr, test_client_config()).expect("loopback connect");
            Box::new(shard) as Box<dyn ShardBackend>
        })
        .collect();
    let router = ClusterRouter::new(backends, RingConfig::default(), 0).expect("valid cluster");
    let front =
        ClusterServer::spawn("127.0.0.1:0", router, test_client_config()).expect("ephemeral port");
    let front_addr = front.local_addr();

    // Store every key's hypervector through the front-end.
    let mut client = BlockingClient::connect(front_addr).expect("connect");
    for (key, hv) in pairs.iter() {
        assert!(!client.insert(key, hv).expect("insert"));
    }

    // The cluster's aggregate stats see all shards and all keys.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.keys, 40);
    assert_eq!(stats.shard_loads.len(), 3);
    assert_eq!(stats.name, "cluster(3)");
    assert_eq!(stats.ring_positions, 128);

    // Live traffic: two clients hammer predictions through the churn,
    // asserting bit-identity on every answer.
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let pairs = Arc::clone(&pairs);
            let expected = Arc::clone(&expected);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut client = BlockingClient::connect(front_addr).expect("connect");
                let mut answered = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    for ((key, hv), &label) in pairs.iter().zip(expected.iter()) {
                        let prediction = client.predict(key, hv).expect("served prediction");
                        assert_eq!(prediction.label, label, "key {key}");
                        answered += 1;
                    }
                }
                answered
            })
        })
        .collect();

    // Shard 1 leaves: its stored entries drain onto the survivors.
    let (removed, drained) = client.shard_leave(1).expect("leave");
    assert!(removed);
    let (_, leaver_server) = fleet_procs.remove(1);
    leaver_server.shutdown();

    // A *blank* shard process (same spec, zero observations) joins warm:
    // the router streams it a donor trainer state plus the item-memory
    // entries the grown ring assigns to it.
    let blank = Pipeline::builder(DIM)
        .seed(seed)
        .classes(2)
        .basis(Basis::Circular { m: 24, r: 0.0 })
        .encoder(Enc::angle())
        .build()
        .expect("valid pipeline");
    let (new_runtime, new_server) = spawn_shard(blank, "shard-3");
    let (joined_id, moved) = client
        .shard_join(&new_server.local_addr().to_string())
        .expect("warm join");
    assert_eq!(joined_id, 3, "ids keep counting like ShardedModel's");
    fleet_procs.push((new_runtime, new_server));

    stop.store(true, Ordering::Relaxed);
    for worker in workers {
        assert!(worker.join().expect("client thread") > 0);
    }

    // The ring after churn matches an in-process fleet with the same
    // history (remove shard 1, add a shard), and predictions are still
    // bit-identical — including on keys now owned by the warm-joined
    // blank shard.
    let mut fleet: ShardedModel<String> =
        ShardedModel::from_model(&model, 3, 0).expect("valid fleet");
    assert!(fleet.remove_shard(1));
    assert_eq!(fleet.add_shard(), 3);
    front.with_router(|router| {
        assert_eq!(router.shard_ids(), vec![0, 2, 3]);
        for key in &keys {
            assert_eq!(router.shard_of(key), fleet.shard_of(key), "key {key}");
        }
    });
    let batched = client.predict_batch(pairs.as_ref().clone()).expect("batch");
    assert_eq!(
        batched.iter().map(|p| p.label).collect::<Vec<_>>(),
        *expected
    );

    // No item was lost in the churn: drained entries were re-inserted,
    // moved entries live on the new shard, and the total stands.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.keys, 40, "drained {drained}, moved {moved}");
    assert_eq!(stats.shard_loads.len(), 3);
    let on_new_shard = stats
        .shard_loads
        .iter()
        .find(|(id, _)| *id == 3)
        .map(|(_, keys)| *keys)
        .expect("joined shard reports a load");
    assert_eq!(on_new_shard, moved);

    drop(client);
    let router = front.shutdown();
    assert!(router.shard_count() >= 1);
    for (runtime, server) in fleet_procs {
        server.shutdown();
        runtime.shutdown();
    }
}

/// Regression cluster churn: after a leave and a warm join of a blank
/// regression shard, served values are still bit-identical to the
/// unsharded model's.
#[test]
fn regression_cluster_survives_warm_join() {
    let seed = 31;
    let model = trained_value_model(seed);
    let inputs: Vec<Radians> = (0..24).map(|i| Radians(f64::from(i) * 0.25)).collect();
    let queries = model.encode_batch(&inputs);
    let expected = model.predict_values_encoded(&queries);
    let keys: Vec<String> = (0..inputs.len()).map(|i| format!("station-{i}")).collect();
    let pairs: Vec<(String, BinaryHypervector)> = keys
        .iter()
        .cloned()
        .zip(queries.rows().map(|row| row.to_hypervector()))
        .collect();

    let mut fleet_procs: Vec<(Runtime<Radians>, Server)> = (0..2)
        .map(|i| spawn_shard(trained_value_model(seed), &format!("shard-{i}")))
        .collect();
    let backends: Vec<Box<dyn ShardBackend>> = fleet_procs
        .iter()
        .map(|(_, server)| {
            let addr = server.local_addr().to_string();
            let shard =
                RemoteShard::connect_with(&addr, test_client_config()).expect("loopback connect");
            Box::new(shard) as Box<dyn ShardBackend>
        })
        .collect();
    let mut router = ClusterRouter::new(backends, RingConfig::default(), 0).expect("valid cluster");
    for (key, hv) in &pairs {
        assert!(!router.insert(key, hv).expect("insert"));
    }

    // Leave shard 0, then warm-join a blank regression shard.
    let (removed, _) = router.leave(0).expect("leave");
    assert!(removed);
    let (_, old_server) = fleet_procs.remove(0);
    old_server.shutdown();
    let blank = Pipeline::builder(DIM)
        .seed(seed)
        .regression(0.0, 24.0, 24)
        .basis(Basis::Circular { m: 24, r: 0.0 })
        .encoder(Enc::angle())
        .build()
        .expect("valid pipeline");
    let (new_runtime, new_server) = spawn_shard(blank, "shard-2");
    let shard =
        RemoteShard::connect_with(&new_server.local_addr().to_string(), test_client_config())
            .expect("loopback connect");
    let (id, _) = router.join(Box::new(shard)).expect("warm join");
    assert_eq!(id, 2);
    fleet_procs.push((new_runtime, new_server));

    let served = router.predict_value_batch(&pairs).expect("routable");
    assert_eq!(served.iter().map(|p| p.value).collect::<Vec<_>>(), expected);
    let stats = router.cluster_stats().expect("stats");
    assert_eq!(stats.keys as usize, pairs.len());

    for (runtime, server) in fleet_procs {
        server.shutdown();
        runtime.shutdown();
    }
}

/// An accepted-but-mute shard must surface as `HdcError::Timeout` within
/// the configured read deadline — the router never hangs on a dead shard.
#[test]
fn unresponsive_shard_times_out_instead_of_hanging() {
    // A listener that accepts connections and then never answers.
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port");
    let addr = listener.local_addr().expect("bound").to_string();
    let mute = thread::spawn(move || {
        // Hold the one connection open without ever writing a byte.
        let held = listener.accept();
        thread::sleep(Duration::from_millis(300));
        drop(held);
    });

    let config = ClientConfig {
        connect_timeout: Duration::from_millis(500),
        read_timeout: Some(Duration::from_millis(50)),
        write_timeout: Some(Duration::from_millis(500)),
        connect_retries: 0,
        retry_backoff: Duration::from_millis(5),
    };
    let mut shard = RemoteShard::connect_with(&addr, config).expect("accepting socket");
    let error = shard.ping().expect_err("mute shard must not answer");
    assert!(
        matches!(error, HdcError::Timeout { .. }),
        "expected a timeout, got {error:?}"
    );
    // The error's message names the stalled operation.
    assert!(error.to_string().contains("timed out"), "{error}");
    mute.join().expect("mute listener thread");
}

/// A connection-refused shard surfaces as `HdcError::Transport` after the
/// bounded retries — and quickly, because the backoff is bounded too.
#[test]
fn refused_connections_fail_bounded() {
    // Bind-then-drop: the port is now (very likely) refusing connections.
    let addr = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port");
        listener.local_addr().expect("bound").to_string()
    };
    let config = ClientConfig {
        connect_timeout: Duration::from_millis(200),
        read_timeout: Some(Duration::from_millis(200)),
        write_timeout: Some(Duration::from_millis(200)),
        connect_retries: 2,
        retry_backoff: Duration::from_millis(5),
    };
    let error = RemoteShard::connect_with(&addr, config).expect_err("refused port");
    assert!(
        matches!(error, HdcError::Transport(_) | HdcError::Timeout { .. }),
        "expected a transport error, got {error:?}"
    );
}

/// Membership opcodes are answered by the right tier: a shard runtime
/// refuses `shard_join`, and the cluster front-end refuses raw
/// `snapshot`/`add_shard` (those belong to shards).
#[test]
fn membership_opcodes_are_tier_checked() {
    let (runtime, server) = spawn_shard(trained_model(5), "solo");
    let mut shard_client = BlockingClient::connect(server.local_addr()).expect("connect");
    assert!(
        shard_client.shard_join("127.0.0.1:1").is_err(),
        "a shard runtime does not answer cluster membership"
    );

    let shard = RemoteShard::connect_with(&server.local_addr().to_string(), test_client_config())
        .expect("loopback connect");
    let router =
        ClusterRouter::new(vec![Box::new(shard)], RingConfig::default(), 0).expect("valid cluster");
    let front =
        ClusterServer::spawn("127.0.0.1:0", router, test_client_config()).expect("ephemeral port");
    let mut cluster_client = BlockingClient::connect(front.local_addr()).expect("connect");
    assert!(
        cluster_client.snapshot().is_err(),
        "snapshot streaming is shard-tier, not router-tier"
    );
    assert!(
        cluster_client.add_shard().is_err(),
        "in-process shard ops are not cluster membership ops"
    );
    // The last shard refuses to leave: the cluster stays serveable.
    assert_eq!(cluster_client.shard_leave(0).expect("answered"), (false, 0));
    let (generation, _) = cluster_client.ping().expect("cluster ping");
    assert_eq!(generation, 0);

    drop(cluster_client);
    let _router = front.shutdown();
    server.shutdown();
    runtime.shutdown();
}
