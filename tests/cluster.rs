//! End-to-end tests of the multi-process shard cluster (PR 6).
//!
//! Acceptance criteria covered here:
//!
//! * **Cluster bit-identity** — N shard `Runtime` processes behind a
//!   [`ClusterRouter`] (loopback TCP, real wire frames) answer
//!   bit-identically to the unsharded `Model` *and* the in-process
//!   `ShardedModel`, for classification and regression, for any shard
//!   count — and key→shard routing matches `ShardedModel::shard_of`
//!   exactly.
//! * **Warm joins under churn** — after one shard leaves and a blank
//!   replacement joins warm via snapshot streaming, predictions are
//!   still bit-identical and every stored item survived, even with
//!   concurrent client traffic throughout.
//! * **Bounded timeouts** — a dead or unresponsive shard surfaces as
//!   `HdcError::Timeout`/`HdcError::Transport` instead of hanging the
//!   router.

use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use hdc::serve::Radians;
use hdc::{
    Basis, BatchPolicy, BinaryHypervector, BlockingClient, ClientConfig, ClusterRouter,
    ClusterServer, Enc, FanOut, HdcError, LocalShard, Model, Pipeline, RemoteShard, RingConfig,
    Runtime, RuntimeConfig, Server, ShardBackend, ShardedModel,
};
use proptest::prelude::*;

const DIM: usize = 256;

/// A small trained angle pipeline (day/night over the 24-hour circle).
/// Deterministic per seed, so every call yields a bit-identical model —
/// which is how each shard process gets the same replicated head.
fn trained_model(seed: u64) -> Model<Radians> {
    let mut model = Pipeline::builder(DIM)
        .seed(seed)
        .classes(2)
        .basis(Basis::Circular { m: 24, r: 0.0 })
        .encoder(Enc::angle())
        .build()
        .expect("valid pipeline");
    let hours: Vec<Radians> = (0..48)
        .map(|i| Radians::periodic(f64::from(i) / 2.0, 24.0))
        .collect();
    let labels: Vec<usize> = (0..48).map(|i| usize::from(i >= 24)).collect();
    model
        .fit_batch(&hours, &labels)
        .expect("valid training set");
    model
}

/// The regression twin: hour-of-day as the real-valued label.
fn trained_value_model(seed: u64) -> Model<Radians> {
    let mut model = Pipeline::builder(DIM)
        .seed(seed)
        .regression(0.0, 24.0, 24)
        .basis(Basis::Circular { m: 24, r: 0.0 })
        .encoder(Enc::angle())
        .build()
        .expect("valid pipeline");
    let hours: Vec<Radians> = (0..48)
        .map(|i| Radians::periodic(f64::from(i) / 2.0, 24.0))
        .collect();
    let values: Vec<f64> = (0..48).map(|i| f64::from(i) / 2.0).collect();
    model
        .fit_value_batch(&hours, &values)
        .expect("valid training set");
    model
}

fn shard_config(name: &str) -> RuntimeConfig {
    RuntimeConfig {
        name: name.to_owned(),
        shards: 1,
        policy: BatchPolicy {
            max_batch: 8,
            max_wait: Duration::from_micros(200),
        },
        refresh_every: 0,
        ..RuntimeConfig::default()
    }
}

/// Spawns one shard *process* stand-in: a runtime with its own framed-TCP
/// server on an ephemeral loopback port.
fn spawn_shard(model: Model<Radians>, name: &str) -> (Runtime<Radians>, Server) {
    let runtime = Runtime::spawn(model, shard_config(name)).expect("valid runtime");
    let server = Server::spawn("127.0.0.1:0", runtime.handle()).expect("ephemeral port");
    (runtime, server)
}

/// Fast-failing client deadlines for tests: a hung shard must surface in
/// milliseconds, not the default 10 s.
fn test_client_config() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_secs(2),
        read_timeout: Some(Duration::from_secs(5)),
        write_timeout: Some(Duration::from_secs(5)),
        connect_retries: 2,
        retry_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(40),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Acceptance criterion: a cluster of N shard runtimes behind the
    /// router — loopback TCP, real wire frames — answers bit-identically
    /// to the unsharded model and the in-process `ShardedModel`, and
    /// routes every key to the same shard id `ShardedModel::shard_of`
    /// picks.
    #[test]
    fn cluster_predictions_are_bit_identical_to_the_sharded_model(
        seed in 0u64..1_000,
        shards in 1usize..5,
        ring_seed in 0u64..100,
    ) {
        let model = trained_model(seed);
        let inputs: Vec<Radians> = (0..40).map(|i| Radians(f64::from(i) * 0.17)).collect();
        let queries = model.encode_batch(&inputs);
        let expected = model.predict_encoded(&queries);
        let keys: Vec<String> = (0..inputs.len()).map(|i| format!("user-{i}")).collect();
        let fleet: ShardedModel<String> =
            ShardedModel::from_model(&model, shards, ring_seed).expect("valid fleet");
        prop_assert_eq!(&fleet.predict_batch(&keys, &queries).expect("routable"), &expected);

        // Same seed + training → every shard process owns a bit-identical
        // replicated head.
        let fleet_procs: Vec<(Runtime<Radians>, Server)> = (0..shards)
            .map(|i| spawn_shard(trained_model(seed), &format!("shard-{i}")))
            .collect();
        let backends: Vec<Box<dyn ShardBackend>> = fleet_procs
            .iter()
            .map(|(_, server)| {
                let addr = server.local_addr().to_string();
                let shard = RemoteShard::connect_with(&addr, test_client_config())
                    .expect("loopback connect");
                Box::new(shard) as Box<dyn ShardBackend>
            })
            .collect();
        let mut router = ClusterRouter::new(backends, RingConfig::default(), ring_seed)
            .expect("valid cluster");
        prop_assert_eq!(router.shard_count(), shards);
        prop_assert_eq!(router.dim(), DIM);

        // Routing parity: the router's ring is the fleet's ring.
        for key in &keys {
            prop_assert_eq!(router.shard_of(key), fleet.shard_of(key));
        }

        // Prediction parity: batch and single paths.
        let pairs: Vec<(String, BinaryHypervector)> = keys
            .iter()
            .cloned()
            .zip(queries.rows().map(|row| row.to_hypervector()))
            .collect();
        let batched = router.predict_batch(&pairs).expect("routable");
        prop_assert_eq!(
            batched.iter().map(|p| p.label).collect::<Vec<_>>(),
            expected.clone()
        );
        for ((key, hv), &label) in pairs.iter().zip(&expected) {
            let prediction = router.predict(key, hv).expect("routable");
            prop_assert_eq!(prediction.label, label);
        }

        for (runtime, server) in fleet_procs {
            server.shutdown();
            runtime.shutdown();
        }
    }

    /// The regression twin: served f64 values over the cluster are
    /// bit-identical to the unsharded model's and the in-process fleet's.
    #[test]
    fn cluster_value_predictions_are_bit_identical_to_the_sharded_model(
        seed in 0u64..1_000,
        shards in 1usize..4,
    ) {
        let model = trained_value_model(seed);
        let inputs: Vec<Radians> = (0..30).map(|i| Radians(f64::from(i) * 0.21)).collect();
        let queries = model.encode_batch(&inputs);
        let expected = model.predict_values_encoded(&queries);
        let keys: Vec<String> = (0..inputs.len()).map(|i| format!("station-{i}")).collect();
        let fleet: ShardedModel<String> =
            ShardedModel::from_model(&model, shards, 0).expect("valid fleet");
        prop_assert_eq!(&fleet.predict_values(&keys, &queries).expect("routable"), &expected);

        let fleet_procs: Vec<(Runtime<Radians>, Server)> = (0..shards)
            .map(|i| spawn_shard(trained_value_model(seed), &format!("shard-{i}")))
            .collect();
        let backends: Vec<Box<dyn ShardBackend>> = fleet_procs
            .iter()
            .map(|(_, server)| {
                let addr = server.local_addr().to_string();
                let shard = RemoteShard::connect_with(&addr, test_client_config())
                    .expect("loopback connect");
                Box::new(shard) as Box<dyn ShardBackend>
            })
            .collect();
        let mut router =
            ClusterRouter::new(backends, RingConfig::default(), 0).expect("valid cluster");

        let pairs: Vec<(String, BinaryHypervector)> = keys
            .iter()
            .cloned()
            .zip(queries.rows().map(|row| row.to_hypervector()))
            .collect();
        let served = router.predict_value_batch(&pairs).expect("routable");
        prop_assert_eq!(
            served.iter().map(|p| p.value).collect::<Vec<_>>(),
            expected
        );

        for (runtime, server) in fleet_procs {
            server.shutdown();
            runtime.shutdown();
        }
    }
}

/// Acceptance criterion: shard leave + warm join under live traffic. A
/// cluster front-end serves concurrent clients while one shard leaves and
/// a **blank** replacement joins warm via snapshot streaming; predictions
/// stay bit-identical throughout, the replacement answers with the
/// trained head it never saw trained, and every stored item survives the
/// churn.
#[test]
fn warm_join_and_leave_under_live_traffic_keep_bit_identity() {
    let seed = 77;
    let model = trained_model(seed);
    let inputs: Vec<Radians> = (0..40).map(|i| Radians(f64::from(i) * 0.13)).collect();
    let queries = model.encode_batch(&inputs);
    let expected = Arc::new(model.predict_encoded(&queries));
    let keys: Vec<String> = (0..inputs.len()).map(|i| format!("user-{i}")).collect();
    let pairs: Arc<Vec<(String, BinaryHypervector)>> = Arc::new(
        keys.iter()
            .cloned()
            .zip(queries.rows().map(|row| row.to_hypervector()))
            .collect(),
    );

    // Three shard processes, a router over them, and a cluster front-end.
    let mut fleet_procs: Vec<(Runtime<Radians>, Server)> = (0..3)
        .map(|i| spawn_shard(trained_model(seed), &format!("shard-{i}")))
        .collect();
    let backends: Vec<Box<dyn ShardBackend>> = fleet_procs
        .iter()
        .map(|(_, server)| {
            let addr = server.local_addr().to_string();
            let shard =
                RemoteShard::connect_with(&addr, test_client_config()).expect("loopback connect");
            Box::new(shard) as Box<dyn ShardBackend>
        })
        .collect();
    let router = ClusterRouter::new(backends, RingConfig::default(), 0).expect("valid cluster");
    let front =
        ClusterServer::spawn("127.0.0.1:0", router, test_client_config()).expect("ephemeral port");
    let front_addr = front.local_addr();

    // Store every key's hypervector through the front-end.
    let mut client = BlockingClient::connect(front_addr).expect("connect");
    for (key, hv) in pairs.iter() {
        assert!(!client.insert(key, hv).expect("insert"));
    }

    // The cluster's aggregate stats see all shards and all keys.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.keys, 40);
    assert_eq!(stats.shard_loads.len(), 3);
    assert_eq!(stats.name, "cluster(3)");
    assert_eq!(stats.ring_positions, 128);

    // Live traffic: two clients hammer predictions through the churn,
    // asserting bit-identity on every answer.
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let pairs = Arc::clone(&pairs);
            let expected = Arc::clone(&expected);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut client = BlockingClient::connect(front_addr).expect("connect");
                let mut answered = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    for ((key, hv), &label) in pairs.iter().zip(expected.iter()) {
                        let prediction = client.predict(key, hv).expect("served prediction");
                        assert_eq!(prediction.label, label, "key {key}");
                        answered += 1;
                    }
                }
                answered
            })
        })
        .collect();

    // Shard 1 leaves: its stored entries drain onto the survivors.
    let (removed, drained) = client.shard_leave(1).expect("leave");
    assert!(removed);
    let (_, leaver_server) = fleet_procs.remove(1);
    leaver_server.shutdown();

    // A *blank* shard process (same spec, zero observations) joins warm:
    // the router streams it a donor trainer state plus the item-memory
    // entries the grown ring assigns to it.
    let blank = Pipeline::builder(DIM)
        .seed(seed)
        .classes(2)
        .basis(Basis::Circular { m: 24, r: 0.0 })
        .encoder(Enc::angle())
        .build()
        .expect("valid pipeline");
    let (new_runtime, new_server) = spawn_shard(blank, "shard-3");
    let (joined_id, moved) = client
        .shard_join(&new_server.local_addr().to_string())
        .expect("warm join");
    assert_eq!(joined_id, 3, "ids keep counting like ShardedModel's");
    fleet_procs.push((new_runtime, new_server));

    stop.store(true, Ordering::Relaxed);
    for worker in workers {
        assert!(worker.join().expect("client thread") > 0);
    }

    // The ring after churn matches an in-process fleet with the same
    // history (remove shard 1, add a shard), and predictions are still
    // bit-identical — including on keys now owned by the warm-joined
    // blank shard.
    let mut fleet: ShardedModel<String> =
        ShardedModel::from_model(&model, 3, 0).expect("valid fleet");
    assert!(fleet.remove_shard(1));
    assert_eq!(fleet.add_shard(), 3);
    front.with_router(|router| {
        assert_eq!(router.shard_ids(), vec![0, 2, 3]);
        for key in &keys {
            assert_eq!(router.shard_of(key), fleet.shard_of(key), "key {key}");
        }
    });
    let batched = client.predict_batch(pairs.as_ref().clone()).expect("batch");
    assert_eq!(
        batched.iter().map(|p| p.label).collect::<Vec<_>>(),
        *expected
    );

    // No item was lost in the churn: drained entries were re-inserted,
    // moved entries live on the new shard, and the total stands.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.keys, 40, "drained {drained}, moved {moved}");
    assert_eq!(stats.shard_loads.len(), 3);
    let on_new_shard = stats
        .shard_loads
        .iter()
        .find(|(id, _)| *id == 3)
        .map(|(_, keys)| *keys)
        .expect("joined shard reports a load");
    assert_eq!(on_new_shard, moved);

    drop(client);
    let router = front.shutdown();
    assert!(router.shard_count() >= 1);
    for (runtime, server) in fleet_procs {
        server.shutdown();
        runtime.shutdown();
    }
}

/// Regression cluster churn: after a leave and a warm join of a blank
/// regression shard, served values are still bit-identical to the
/// unsharded model's.
#[test]
fn regression_cluster_survives_warm_join() {
    let seed = 31;
    let model = trained_value_model(seed);
    let inputs: Vec<Radians> = (0..24).map(|i| Radians(f64::from(i) * 0.25)).collect();
    let queries = model.encode_batch(&inputs);
    let expected = model.predict_values_encoded(&queries);
    let keys: Vec<String> = (0..inputs.len()).map(|i| format!("station-{i}")).collect();
    let pairs: Vec<(String, BinaryHypervector)> = keys
        .iter()
        .cloned()
        .zip(queries.rows().map(|row| row.to_hypervector()))
        .collect();

    let mut fleet_procs: Vec<(Runtime<Radians>, Server)> = (0..2)
        .map(|i| spawn_shard(trained_value_model(seed), &format!("shard-{i}")))
        .collect();
    let backends: Vec<Box<dyn ShardBackend>> = fleet_procs
        .iter()
        .map(|(_, server)| {
            let addr = server.local_addr().to_string();
            let shard =
                RemoteShard::connect_with(&addr, test_client_config()).expect("loopback connect");
            Box::new(shard) as Box<dyn ShardBackend>
        })
        .collect();
    let mut router = ClusterRouter::new(backends, RingConfig::default(), 0).expect("valid cluster");
    for (key, hv) in &pairs {
        assert!(!router.insert(key, hv).expect("insert"));
    }

    // Leave shard 0, then warm-join a blank regression shard.
    let (removed, _) = router.leave(0).expect("leave");
    assert!(removed);
    let (_, old_server) = fleet_procs.remove(0);
    old_server.shutdown();
    let blank = Pipeline::builder(DIM)
        .seed(seed)
        .regression(0.0, 24.0, 24)
        .basis(Basis::Circular { m: 24, r: 0.0 })
        .encoder(Enc::angle())
        .build()
        .expect("valid pipeline");
    let (new_runtime, new_server) = spawn_shard(blank, "shard-2");
    let shard =
        RemoteShard::connect_with(&new_server.local_addr().to_string(), test_client_config())
            .expect("loopback connect");
    let (id, _) = router.join(Box::new(shard)).expect("warm join");
    assert_eq!(id, 2);
    fleet_procs.push((new_runtime, new_server));

    let served = router.predict_value_batch(&pairs).expect("routable");
    assert_eq!(served.iter().map(|p| p.value).collect::<Vec<_>>(), expected);
    let stats = router.cluster_stats().expect("stats");
    assert_eq!(stats.keys as usize, pairs.len());

    for (runtime, server) in fleet_procs {
        server.shutdown();
        runtime.shutdown();
    }
}

/// An accepted-but-mute shard must surface as `HdcError::Timeout` within
/// the configured read deadline — the router never hangs on a dead shard.
#[test]
fn unresponsive_shard_times_out_instead_of_hanging() {
    // A listener that accepts connections and then never answers.
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port");
    let addr = listener.local_addr().expect("bound").to_string();
    let mute = thread::spawn(move || {
        // Hold the one connection open without ever writing a byte.
        let held = listener.accept();
        thread::sleep(Duration::from_millis(300));
        drop(held);
    });

    let config = ClientConfig {
        connect_timeout: Duration::from_millis(500),
        read_timeout: Some(Duration::from_millis(50)),
        write_timeout: Some(Duration::from_millis(500)),
        connect_retries: 0,
        retry_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(20),
    };
    let mut shard = RemoteShard::connect_with(&addr, config).expect("accepting socket");
    let error = shard.ping().expect_err("mute shard must not answer");
    assert!(
        matches!(error, HdcError::Timeout { .. }),
        "expected a timeout, got {error:?}"
    );
    // The error's message names the stalled operation.
    assert!(error.to_string().contains("timed out"), "{error}");
    mute.join().expect("mute listener thread");
}

/// A connection-refused shard surfaces as `HdcError::Transport` after the
/// bounded retries — and quickly, because the backoff is bounded too.
#[test]
fn refused_connections_fail_bounded() {
    // Bind-then-drop: the port is now (very likely) refusing connections.
    let addr = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port");
        listener.local_addr().expect("bound").to_string()
    };
    let config = ClientConfig {
        connect_timeout: Duration::from_millis(200),
        read_timeout: Some(Duration::from_millis(200)),
        write_timeout: Some(Duration::from_millis(200)),
        connect_retries: 2,
        retry_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(20),
    };
    let error = RemoteShard::connect_with(&addr, config).expect_err("refused port");
    assert!(
        matches!(error, HdcError::Transport(_) | HdcError::Timeout { .. }),
        "expected a transport error, got {error:?}"
    );
}

/// A [`ShardBackend`] wrapper whose `insert`/`remove`/`fit` paths can be
/// switched to fail on demand — the transport-fault injection behind the
/// partial-failure recovery tests. Snapshot/restore/predict always pass
/// through, mimicking a peer that is reachable but flaking on specific
/// operations (or a transient blip the router must absorb).
struct FlakyShard {
    inner: Box<dyn ShardBackend>,
    fail_insert: Arc<AtomicBool>,
    fail_remove: Arc<AtomicBool>,
    fail_fit: Arc<AtomicBool>,
}

impl FlakyShard {
    fn new(
        inner: Box<dyn ShardBackend>,
    ) -> (Self, Arc<AtomicBool>, Arc<AtomicBool>, Arc<AtomicBool>) {
        let fail_insert = Arc::new(AtomicBool::new(false));
        let fail_remove = Arc::new(AtomicBool::new(false));
        let fail_fit = Arc::new(AtomicBool::new(false));
        let shard = Self {
            inner,
            fail_insert: Arc::clone(&fail_insert),
            fail_remove: Arc::clone(&fail_remove),
            fail_fit: Arc::clone(&fail_fit),
        };
        (shard, fail_insert, fail_remove, fail_fit)
    }

    fn injected(flag: &AtomicBool) -> Result<(), HdcError> {
        if flag.load(Ordering::Relaxed) {
            Err(HdcError::Transport("injected fault".into()))
        } else {
            Ok(())
        }
    }
}

impl ShardBackend for FlakyShard {
    fn describe(&self) -> String {
        format!("flaky({})", self.inner.describe())
    }

    fn predict_encoded_many(
        &mut self,
        pairs: Vec<(String, BinaryHypervector)>,
    ) -> Result<Vec<hdc::Prediction>, HdcError> {
        self.inner.predict_encoded_many(pairs)
    }

    fn predict_value_encoded_many(
        &mut self,
        pairs: Vec<(String, BinaryHypervector)>,
    ) -> Result<Vec<hdc::ValuePrediction>, HdcError> {
        self.inner.predict_value_encoded_many(pairs)
    }

    fn insert(&mut self, key: String, hv: BinaryHypervector) -> Result<bool, HdcError> {
        Self::injected(&self.fail_insert)?;
        self.inner.insert(key, hv)
    }

    fn remove(&mut self, key: &str) -> Result<bool, HdcError> {
        Self::injected(&self.fail_remove)?;
        self.inner.remove(key)
    }

    fn fit_encoded(&mut self, hv: BinaryHypervector, label: usize) -> Result<(), HdcError> {
        Self::injected(&self.fail_fit)?;
        self.inner.fit_encoded(hv, label)
    }

    fn fit_value_encoded(&mut self, hv: BinaryHypervector, value: f64) -> Result<(), HdcError> {
        Self::injected(&self.fail_fit)?;
        self.inner.fit_value_encoded(hv, value)
    }

    fn refresh(&mut self) -> Result<u64, HdcError> {
        self.inner.refresh()
    }

    fn stats(&mut self) -> Result<hdc::RuntimeStats, HdcError> {
        self.inner.stats()
    }

    fn ping(&mut self) -> Result<(u64, u64), HdcError> {
        self.inner.ping()
    }

    fn snapshot(&mut self) -> Result<hdc::Snapshot, HdcError> {
        self.inner.snapshot()
    }

    fn restore(&mut self, snapshot: &hdc::Snapshot) -> Result<u64, HdcError> {
        self.inner.restore(snapshot)
    }
}

/// The test cluster the fault-injection tests share: `shards` flaky
/// backends over real shard processes, the keyed entries inserted, and
/// the expected (bit-identical) predictions.
#[allow(clippy::type_complexity)]
fn flaky_cluster(
    seed: u64,
    shards: usize,
) -> (
    ClusterRouter,
    Vec<(Runtime<Radians>, Server)>,
    Vec<(Arc<AtomicBool>, Arc<AtomicBool>, Arc<AtomicBool>)>,
    Vec<(String, BinaryHypervector)>,
    Vec<usize>,
    Model<Radians>,
) {
    let model = trained_model(seed);
    let inputs: Vec<Radians> = (0..40).map(|i| Radians(f64::from(i) * 0.19)).collect();
    let queries = model.encode_batch(&inputs);
    let expected = model.predict_encoded(&queries);
    let pairs: Vec<(String, BinaryHypervector)> = (0..inputs.len())
        .map(|i| format!("user-{i}"))
        .zip(queries.rows().map(|row| row.to_hypervector()))
        .collect();

    let fleet_procs: Vec<(Runtime<Radians>, Server)> = (0..shards)
        .map(|i| spawn_shard(trained_model(seed), &format!("shard-{i}")))
        .collect();
    let mut flags = Vec::new();
    let backends: Vec<Box<dyn ShardBackend>> = fleet_procs
        .iter()
        .map(|(_, server)| {
            let addr = server.local_addr().to_string();
            let shard =
                RemoteShard::connect_with(&addr, test_client_config()).expect("loopback connect");
            let (flaky, fail_insert, fail_remove, fail_fit) = FlakyShard::new(Box::new(shard));
            flags.push((fail_insert, fail_remove, fail_fit));
            Box::new(flaky) as Box<dyn ShardBackend>
        })
        .collect();
    let mut router = ClusterRouter::new(backends, RingConfig::default(), 0).expect("valid cluster");
    for (key, hv) in &pairs {
        assert!(!router.insert(key, hv).expect("insert"));
    }
    (router, fleet_procs, flags, pairs, expected, model)
}

fn assert_bit_identical(
    router: &mut ClusterRouter,
    pairs: &[(String, BinaryHypervector)],
    expected: &[usize],
) {
    let served = router.predict_batch(pairs).expect("routable");
    assert_eq!(
        served.iter().map(|p| p.label).collect::<Vec<_>>(),
        expected,
        "cluster answers must stay bit-identical"
    );
}

/// REVIEW regression (high): a join whose post-restore cleanup fails must
/// stay **committed** — the newcomer holds the moved entries and the ring
/// routes to it, so the router must keep serving (previously the ring
/// kept a node with no backend and the next lookup panicked, poisoning
/// the front-end's router mutex). The skipped removals are deferred and
/// flushed before the next membership change.
#[test]
fn join_commits_even_when_cleanup_removals_fail() {
    let (mut router, mut fleet_procs, flags, pairs, expected, model) = flaky_cluster(11, 2);

    // Every peer refuses `remove`: the cleanup after the snapshot stream
    // cannot land.
    for (_, fail_remove, _) in &flags {
        fail_remove.store(true, Ordering::Relaxed);
    }

    let blank = Pipeline::builder(DIM)
        .seed(11)
        .classes(2)
        .basis(Basis::Circular { m: 24, r: 0.0 })
        .encoder(Enc::angle())
        .build()
        .expect("valid pipeline");
    let (new_runtime, new_server) = spawn_shard(blank, "shard-2");
    let newcomer =
        RemoteShard::connect_with(&new_server.local_addr().to_string(), test_client_config())
            .expect("loopback connect");
    let (id, moved) = router
        .join(Box::new(newcomer))
        .expect("the join committed once the newcomer adopted the snapshot");
    fleet_procs.push((new_runtime, new_server));
    assert_eq!(id, 2);
    assert!(moved > 0, "this seed moves entries to the newcomer");
    assert_eq!(router.shard_ids(), vec![0, 1, 2]);

    // Routing still works for every key — including the moved ones, now
    // answered by the newcomer. Stale copies are unreachable garbage.
    assert_bit_identical(&mut router, &pairs, &expected);
    assert_eq!(router.deferred_cleanup() as u64, moved);
    let stats = router.cluster_stats().expect("stats");
    assert_eq!(
        stats.keys as usize,
        pairs.len() + moved as usize,
        "stale copies show up only as key-count drift"
    );

    // The transport heals; the next membership change flushes the
    // deferred cleanup before doing anything else.
    for (_, fail_remove, _) in &flags {
        fail_remove.store(false, Ordering::Relaxed);
    }
    let (removed, _) = router.leave(2).expect("leave after heal");
    assert!(removed);
    assert_eq!(router.deferred_cleanup(), 0);
    let stats = router.cluster_stats().expect("stats");
    assert_eq!(
        stats.keys as usize,
        pairs.len(),
        "no entry lost, no stale copy left"
    );
    assert_bit_identical(&mut router, &pairs, &expected);

    drop(model);
    for (runtime, server) in fleet_procs {
        server.shutdown();
        runtime.shutdown();
    }
}

/// REVIEW regression (medium): a leave whose drain fails partway must
/// roll back — the leaver re-enters the ring with its entries intact and
/// nothing is stranded (previously the remaining items were silently
/// dropped with the leaver already out of the ring).
#[test]
fn failed_leave_drain_rolls_back_and_loses_nothing() {
    let (mut router, fleet_procs, flags, pairs, expected, model) = flaky_cluster(23, 3);

    // Every potential receiver refuses `insert`: the drain cannot land.
    for (fail_insert, _, _) in &flags {
        fail_insert.store(true, Ordering::Relaxed);
    }
    let error = router.leave(1).expect_err("the drain cannot land anywhere");
    assert!(
        matches!(error, HdcError::Transport(_)),
        "expected the injected transport error, got {error:?}"
    );

    // Rolled back: the leaver is still a routable member and every
    // prediction still lands (inject faults only hit writes).
    assert_eq!(router.shard_ids(), vec![0, 1, 2]);
    assert_bit_identical(&mut router, &pairs, &expected);

    // Heal and retry: the leave now completes, the deferred duplicates
    // are flushed first, and no entry was lost in the round trip.
    for (fail_insert, _, _) in &flags {
        fail_insert.store(false, Ordering::Relaxed);
    }
    let (removed, drained) = router.leave(1).expect("leave after heal");
    assert!(removed);
    assert_eq!(router.shard_ids(), vec![0, 2]);
    assert_eq!(router.deferred_cleanup(), 0);
    let stats = router.cluster_stats().expect("stats");
    assert_eq!(
        stats.keys as usize,
        pairs.len(),
        "drained {drained} entries all survived"
    );
    assert_bit_identical(&mut router, &pairs, &expected);

    drop(model);
    for (runtime, server) in fleet_procs {
        server.shutdown();
        runtime.shutdown();
    }
}

/// REVIEW regression (medium): a replicated fit that fails on one shard
/// must not silently break the bit-identity invariant. The failed shard
/// is marked lagging, skipped by further fits, and healed from a healthy
/// peer's trainer snapshot before the next refresh publishes — after
/// which the cluster answers bit-identically to an unsharded model that
/// saw the same observations. A fit no shard accepted is reported and
/// safe to retry.
#[test]
fn partial_fit_failure_marks_lagging_and_heals_before_refresh() {
    let seed = 37;
    let (mut router, fleet_procs, flags, pairs, _, model) = flaky_cluster(seed, 2);

    // Two extra observations arrive while shard 1 is flaking on fit.
    let extra_inputs = [Radians::periodic(3.0, 24.0), Radians::periodic(21.0, 24.0)];
    let extra_labels = [0usize, 1usize];
    flags[1].2.store(true, Ordering::Relaxed);
    for (input, &label) in extra_inputs.iter().zip(&extra_labels) {
        let hv = model.encode(input);
        router
            .fit_encoded(&hv, label)
            .expect("the reachable shard accepted the observation");
    }
    assert_eq!(router.lagging_shards(), vec![1]);

    // A fit **no** shard accepts is an error and marks nothing: the
    // cluster is unchanged, so the caller can retry without double-fits.
    flags[0].2.store(true, Ordering::Relaxed);
    let hv = model.encode(&extra_inputs[0]);
    assert!(router.fit_encoded(&hv, 0).is_err());
    assert_eq!(router.lagging_shards(), vec![1], "nothing newly marked");
    flags[0].2.store(false, Ordering::Relaxed);

    // Refresh heals the laggard from the healthy donor's trainer
    // snapshot, then publishes everywhere.
    router.refresh().expect("resync + publish");
    assert!(router.lagging_shards().is_empty());

    // Reference: the unsharded model after the same two observations.
    let mut reference = trained_model(seed);
    reference
        .fit_batch(&extra_inputs, &extra_labels)
        .expect("valid observations");
    let inputs: Vec<Radians> = (0..pairs.len()).map(|i| Radians(i as f64 * 0.19)).collect();
    let queries = reference.encode_batch(&inputs);
    let expected = reference.predict_encoded(&queries);
    assert_bit_identical(&mut router, &pairs, &expected);

    for (runtime, server) in fleet_procs {
        server.shutdown();
        runtime.shutdown();
    }
}

/// Membership opcodes are answered by the right tier: a shard runtime
/// refuses `shard_join`, and the cluster front-end refuses raw
/// `snapshot`/`add_shard` (those belong to shards).
#[test]
fn membership_opcodes_are_tier_checked() {
    let (runtime, server) = spawn_shard(trained_model(5), "solo");
    let mut shard_client = BlockingClient::connect(server.local_addr()).expect("connect");
    assert!(
        shard_client.shard_join("127.0.0.1:1").is_err(),
        "a shard runtime does not answer cluster membership"
    );

    let shard = RemoteShard::connect_with(&server.local_addr().to_string(), test_client_config())
        .expect("loopback connect");
    let router =
        ClusterRouter::new(vec![Box::new(shard)], RingConfig::default(), 0).expect("valid cluster");
    let front =
        ClusterServer::spawn("127.0.0.1:0", router, test_client_config()).expect("ephemeral port");
    let mut cluster_client = BlockingClient::connect(front.local_addr()).expect("connect");
    assert!(
        cluster_client.snapshot().is_err(),
        "snapshot streaming is shard-tier, not router-tier"
    );
    assert!(
        cluster_client.add_shard().is_err(),
        "in-process shard ops are not cluster membership ops"
    );
    // The last shard refuses to leave: the cluster stays serveable.
    assert_eq!(cluster_client.shard_leave(0).expect("answered"), (false, 0));
    let (generation, _) = cluster_client.ping().expect("cluster ping");
    assert_eq!(generation, 0);

    drop(cluster_client);
    let _router = front.shutdown();
    server.shutdown();
    runtime.shutdown();
}

/// A [`ShardBackend`] decorator that sleeps before every query, fit,
/// stats and ping call — a stand-in for a shard one slow network hop
/// away. The sleeps are what let the tests below *measure* whether the
/// router overlaps its per-shard waits.
struct SlowShard {
    inner: Box<dyn ShardBackend>,
    delay: Duration,
}

impl SlowShard {
    fn pause(&self) {
        if !self.delay.is_zero() {
            thread::sleep(self.delay);
        }
    }
}

impl ShardBackend for SlowShard {
    fn describe(&self) -> String {
        format!("slow({})", self.inner.describe())
    }

    fn predict_encoded_many(
        &mut self,
        pairs: Vec<(String, BinaryHypervector)>,
    ) -> Result<Vec<hdc::Prediction>, HdcError> {
        self.pause();
        self.inner.predict_encoded_many(pairs)
    }

    fn predict_value_encoded_many(
        &mut self,
        pairs: Vec<(String, BinaryHypervector)>,
    ) -> Result<Vec<hdc::ValuePrediction>, HdcError> {
        self.pause();
        self.inner.predict_value_encoded_many(pairs)
    }

    fn insert(&mut self, key: String, hv: BinaryHypervector) -> Result<bool, HdcError> {
        self.inner.insert(key, hv)
    }

    fn remove(&mut self, key: &str) -> Result<bool, HdcError> {
        self.inner.remove(key)
    }

    fn fit_encoded(&mut self, hv: BinaryHypervector, label: usize) -> Result<(), HdcError> {
        self.pause();
        self.inner.fit_encoded(hv, label)
    }

    fn fit_value_encoded(&mut self, hv: BinaryHypervector, value: f64) -> Result<(), HdcError> {
        self.pause();
        self.inner.fit_value_encoded(hv, value)
    }

    fn refresh(&mut self) -> Result<u64, HdcError> {
        self.inner.refresh()
    }

    fn stats(&mut self) -> Result<hdc::RuntimeStats, HdcError> {
        self.pause();
        self.inner.stats()
    }

    fn ping(&mut self) -> Result<(u64, u64), HdcError> {
        self.pause();
        self.inner.ping()
    }

    fn snapshot(&mut self) -> Result<hdc::Snapshot, HdcError> {
        self.inner.snapshot()
    }

    fn restore(&mut self, snapshot: &hdc::Snapshot) -> Result<u64, HdcError> {
        self.inner.restore(snapshot)
    }
}

/// A 3-shard cluster of in-process runtimes behind [`SlowShard`]
/// decorators, plus a query batch guaranteed to involve all three shards
/// and the unsharded model's (bit-exact) expected labels.
#[allow(clippy::type_complexity)]
fn slow_cluster(
    delay: Duration,
) -> (
    ClusterRouter,
    Vec<Runtime<Radians>>,
    Vec<(String, BinaryHypervector)>,
    Vec<usize>,
) {
    let model = trained_model(5);
    let inputs: Vec<Radians> = (0..24).map(|i| Radians(f64::from(i) * 0.26)).collect();
    let queries = model.encode_batch(&inputs);
    let expected = model.predict_encoded(&queries);
    let pairs: Vec<(String, BinaryHypervector)> = (0..inputs.len())
        .map(|i| format!("slow-key-{i}"))
        .zip(queries.rows().map(|row| row.to_hypervector()))
        .collect();

    let runtimes: Vec<Runtime<Radians>> = (0..3)
        .map(|i| {
            Runtime::spawn(trained_model(5), shard_config(&format!("slow-{i}")))
                .expect("valid runtime")
        })
        .collect();
    let backends: Vec<Box<dyn ShardBackend>> = runtimes
        .iter()
        .map(|runtime| {
            Box::new(SlowShard {
                inner: Box::new(LocalShard::new(runtime.handle())),
                delay,
            }) as Box<dyn ShardBackend>
        })
        .collect();
    let router = ClusterRouter::new(backends, RingConfig::default(), 0).expect("valid cluster");
    let involved: std::collections::BTreeSet<usize> =
        pairs.iter().map(|(key, _)| router.shard_of(key)).collect();
    assert_eq!(involved.len(), 3, "batch must span all three shards");
    (router, runtimes, pairs, expected)
}

/// Tentpole acceptance: with one slow hop per shard, the concurrent
/// router pays the slowest shard's wait once — not the sum — for batch
/// predicts, replicated fits, stats and ping alike, while the serial
/// mode provably pays the sum. (Sleeps overlap even on one core, which
/// is exactly the transport-bound regime the fan-out targets.)
#[test]
fn concurrent_fan_out_overlaps_shard_waits() {
    let delay = Duration::from_millis(60);
    let budget = 3 * delay; // what serial necessarily pays per call
    let (mut router, runtimes, pairs, expected) = slow_cluster(delay);

    router.set_fan_out(FanOut::Serial);
    let serial_start = std::time::Instant::now();
    assert_bit_identical(&mut router, &pairs, &expected);
    let serial_elapsed = serial_start.elapsed();
    assert!(
        serial_elapsed >= budget,
        "serial fan-out must pay every shard's wait: {serial_elapsed:?} < {budget:?}"
    );

    router.set_fan_out(FanOut::Concurrent);
    let concurrent_start = std::time::Instant::now();
    assert_bit_identical(&mut router, &pairs, &expected);
    let concurrent_elapsed = concurrent_start.elapsed();
    assert!(
        concurrent_elapsed < budget,
        "concurrent fan-out must overlap shard waits: {concurrent_elapsed:?} >= {budget:?}"
    );

    // Replicated fits fan out to all three shards concurrently too.
    let fit_start = std::time::Instant::now();
    router.fit_encoded(&pairs[0].1, 1).expect("replicated fit");
    assert!(
        fit_start.elapsed() < budget,
        "concurrent replicate must overlap shard waits"
    );

    // Stats and ping probes reuse the same concurrent path.
    let stats_start = std::time::Instant::now();
    let per_shard = router.shard_stats().expect("stats");
    assert_eq!(per_shard.len(), 3);
    assert!(
        stats_start.elapsed() < budget,
        "concurrent stats must overlap shard waits"
    );
    let ping_start = std::time::Instant::now();
    router.ping().expect("ping");
    assert!(
        ping_start.elapsed() < budget,
        "concurrent ping must overlap shard waits"
    );

    drop(router);
    for runtime in runtimes {
        runtime.shutdown();
    }
}

/// Serial and concurrent fan-out are observationally identical: same
/// predictions (both equal to the unsharded model's), same per-shard
/// stats identities, same ping generation — including after replicated
/// fits performed in either mode.
#[test]
fn serial_and_concurrent_fan_out_are_bit_identical() {
    let (mut serial_router, serial_runtimes, pairs, expected) = slow_cluster(Duration::ZERO);
    let (mut concurrent_router, concurrent_runtimes, _, _) = slow_cluster(Duration::ZERO);
    serial_router.set_fan_out(FanOut::Serial);
    assert_eq!(serial_router.fan_out_mode(), FanOut::Serial);
    assert_eq!(concurrent_router.fan_out_mode(), FanOut::Concurrent);

    assert_bit_identical(&mut serial_router, &pairs, &expected);
    assert_bit_identical(&mut concurrent_router, &pairs, &expected);

    // One replicated fit per mode, then a refresh: the twin clusters must
    // still answer identically query for query.
    for (hv, label) in [(&pairs[0].1, 0usize), (&pairs[1].1, 1usize)] {
        serial_router.fit_encoded(hv, label).expect("serial fit");
        concurrent_router
            .fit_encoded(hv, label)
            .expect("concurrent fit");
    }
    let serial_generation = serial_router.refresh().expect("refresh");
    let concurrent_generation = concurrent_router.refresh().expect("refresh");
    assert_eq!(serial_generation, concurrent_generation);
    let serial_answers = serial_router.predict_batch(&pairs).expect("predict");
    let concurrent_answers = concurrent_router.predict_batch(&pairs).expect("predict");
    assert_eq!(
        serial_answers.iter().map(|p| p.label).collect::<Vec<_>>(),
        concurrent_answers
            .iter()
            .map(|p| p.label)
            .collect::<Vec<_>>(),
        "fan-out mode must never change an answer"
    );

    // Stats agree on everything that is not a wall clock.
    let serial_stats = serial_router.shard_stats().expect("stats");
    let concurrent_stats = concurrent_router.shard_stats().expect("stats");
    assert_eq!(serial_stats.len(), concurrent_stats.len());
    for ((serial_id, serial), (concurrent_id, concurrent)) in
        serial_stats.iter().zip(&concurrent_stats)
    {
        assert_eq!(serial_id, concurrent_id);
        assert_eq!(serial.generation, concurrent.generation);
        assert_eq!(serial.keys, concurrent.keys);
        assert_eq!(serial.dim, concurrent.dim);
        assert_eq!(serial.classes, concurrent.classes);
    }
    let (serial_ping, _) = serial_router.ping().expect("ping");
    let (concurrent_ping, _) = concurrent_router.ping().expect("ping");
    assert_eq!(serial_ping, concurrent_ping);

    drop(serial_router);
    drop(concurrent_router);
    for runtime in serial_runtimes.into_iter().chain(concurrent_runtimes) {
        runtime.shutdown();
    }
}
