//! Property tests for the serving layer: sharded prediction must be
//! **bit-identical** to the unsharded [`Model`] for any shard count, and
//! shard churn must remap only the expected fraction of keys (the
//! consistent-hashing guarantees, asserted end-to-end through
//! `ShardedModel` rather than the raw ring).

use hdc::serve::Radians;
use hdc::{
    Basis, BinaryHypervector, Enc, HypervectorBatch, ItemMemory, Model, Pipeline, ShardedModel,
};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A small trained angle pipeline (day/night over the 24-hour circle).
fn trained_model(dim: usize, seed: u64) -> Model<Radians> {
    let mut model = Pipeline::builder(dim)
        .seed(seed)
        .classes(2)
        .basis(Basis::Circular { m: 24, r: 0.0 })
        .encoder(Enc::angle())
        .build()
        .expect("valid pipeline");
    let hours: Vec<Radians> = (0..48)
        .map(|i| Radians::periodic(f64::from(i) / 2.0, 24.0))
        .collect();
    let labels: Vec<usize> = (0..48).map(|i| usize::from(i >= 24)).collect();
    model
        .fit_batch(&hours, &labels)
        .expect("valid training set");
    model
}

proptest! {
    /// Acceptance criterion: `ShardedModel::predict_batch` over any shard
    /// count (including ≥ 2) is bit-identical to the unsharded `Model`.
    #[test]
    fn sharded_predictions_match_unsharded_model(
        seed in 0u64..50,
        shards in 1usize..7,
        dim in 200usize..400,
        queries in 1usize..60,
    ) {
        let model = trained_model(dim, seed);
        let fleet: ShardedModel<String> =
            ShardedModel::from_model(&model, shards, seed ^ 0xA5).expect("valid fleet");
        prop_assert_eq!(fleet.shard_count(), shards);

        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31));
        let inputs: Vec<Radians> = (0..queries)
            .map(|_| Radians(rng.random_range(0.0f64..7.0)))
            .collect();
        let keys: Vec<String> = (0..queries).map(|i| format!("user-{i}")).collect();

        let encoded = model.encode_batch(&inputs);
        let unsharded = model.predict_encoded(&encoded);
        prop_assert_eq!(&unsharded, &model.predict_batch(&inputs));
        let sharded = fleet.predict_batch(&keys, &encoded).expect("routable batch");
        prop_assert_eq!(&sharded, &unsharded);
    }

    /// Shard addition remaps only keys that move *to* the new shard, the
    /// moved fraction stays a minority, and removing the shard restores the
    /// exact previous assignment.
    #[test]
    fn shard_churn_remaps_gracefully(seed in 0u64..50, shards in 2usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let classes: Vec<BinaryHypervector> =
            (0..3).map(|_| BinaryHypervector::random(256, &mut rng)).collect();
        let classifier =
            hdc::learn::CentroidClassifier::from_class_vectors(classes).expect("non-empty");
        let mut fleet: ShardedModel<u64> =
            ShardedModel::new(classifier, 256, shards, seed).expect("valid fleet");

        let keys: Vec<u64> = (0..500).collect();
        let before: Vec<usize> = keys.iter().map(|k| fleet.shard_of(k)).collect();
        let new_shard = fleet.add_shard();
        let after: Vec<usize> = keys.iter().map(|k| fleet.shard_of(k)).collect();

        let mut moved = 0usize;
        for (b, a) in before.iter().zip(&after) {
            if b != a {
                // Movers must land on the new shard.
                prop_assert_eq!(*a, new_shard);
                moved += 1;
            }
        }
        let fraction = moved as f64 / keys.len() as f64;
        prop_assert!(
            fraction < 0.75,
            "adding 1 of {} shards moved {fraction}",
            shards + 1
        );

        prop_assert!(fleet.remove_shard(new_shard));
        let restored: Vec<usize> = keys.iter().map(|k| fleet.shard_of(k)).collect();
        prop_assert_eq!(before, restored);
    }

    /// Removing an original shard remaps exactly the keys it served, and
    /// stored item-memory entries survive the churn on their new owners.
    #[test]
    fn shard_removal_only_remaps_its_keys(seed in 0u64..50, shards in 2usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let classifier = hdc::learn::CentroidClassifier::from_class_vectors(vec![
            BinaryHypervector::random(256, &mut rng),
            BinaryHypervector::random(256, &mut rng),
        ])
        .expect("non-empty");
        let mut fleet: ShardedModel<u64> =
            ShardedModel::new(classifier, 256, shards, seed).expect("valid fleet");
        let keys: Vec<u64> = (0..300).collect();
        for &key in &keys {
            fleet.insert(key, BinaryHypervector::random(256, &mut rng));
        }

        let before: Vec<usize> = keys.iter().map(|k| fleet.shard_of(k)).collect();
        let victim = fleet.shard_ids()[usize::try_from(seed).unwrap_or(0) % shards];
        prop_assert!(fleet.remove_shard(victim));
        for (key, owner_before) in keys.iter().zip(&before) {
            let owner_after = fleet.shard_of(key);
            if *owner_before == victim {
                prop_assert!(owner_after != victim);
            } else {
                // A key whose shard survived must not move.
                prop_assert_eq!(owner_after, *owner_before);
            }
            // No entry is lost by the redistribution.
            prop_assert!(fleet.get(key).is_some());
        }
        prop_assert_eq!(fleet.len(), keys.len());
    }
}

/// `ItemMemory::remove` edge cases: absent keys (on empty and populated
/// memories), repeated removal, and index integrity after swap-remove
/// churn.
#[test]
fn item_memory_remove_handles_absent_keys_and_churn() {
    let mut rng = StdRng::seed_from_u64(0x1E4);
    let mut memory: ItemMemory<u32> = ItemMemory::new();
    assert!(memory.remove(&7).is_none(), "remove on an empty memory");

    let hvs: Vec<BinaryHypervector> = (0..8)
        .map(|_| BinaryHypervector::random(128, &mut rng))
        .collect();
    for (i, hv) in hvs.iter().enumerate() {
        memory.insert(u32::try_from(i).unwrap(), hv.clone());
    }
    assert!(
        memory.remove(&99).is_none(),
        "absent key on a populated memory"
    );
    // Interleave removals with absent-key probes; swap-remove must keep
    // every surviving key resolvable throughout.
    for victim in [0u32, 7, 3] {
        assert!(memory.remove(&victim).is_some());
        assert!(
            memory.remove(&victim).is_none(),
            "double remove of {victim}"
        );
        for (i, hv) in hvs.iter().enumerate() {
            let key = u32::try_from(i).unwrap();
            if memory.contains(&key) {
                assert_eq!(memory.get(&key), Some(hv), "key {key} after churn");
            }
        }
    }
    assert_eq!(memory.len(), 5);
}

/// `ItemMemory::into_entries` edge cases: an empty memory yields nothing,
/// and a churned memory moves exactly its surviving entries (the path
/// `remove_shard` redistributes through).
#[test]
fn item_memory_into_entries_moves_the_surviving_entries() {
    let mut rng = StdRng::seed_from_u64(0x1E5);
    let empty: ItemMemory<String> = ItemMemory::new();
    assert!(empty.into_entries().is_empty());

    let mut memory: ItemMemory<String> = ItemMemory::new();
    let first = BinaryHypervector::random(128, &mut rng);
    let second = BinaryHypervector::random(128, &mut rng);
    memory.insert("dup".to_string(), first);
    memory.insert("dup".to_string(), second.clone());
    memory.insert("gone".to_string(), BinaryHypervector::random(128, &mut rng));
    memory.insert("kept".to_string(), second.clone());
    memory.remove(&"gone".to_string());
    let mut entries = memory.into_entries();
    entries.sort_by(|(a, _), (b, _)| a.cmp(b));
    assert_eq!(entries.len(), 2);
    // The duplicate-key insert survives as its *latest* value.
    assert_eq!(entries[0], ("dup".to_string(), second.clone()));
    assert_eq!(entries[1], ("kept".to_string(), second));
}

/// Fleet-level churn edge cases: shard add/remove with zero stored entries,
/// removal of absent keys through the routing layer, and duplicate-key
/// re-inserts surviving a reshard with their latest value.
#[test]
fn fleet_churn_on_empty_shards_and_duplicate_keys() {
    let mut rng = StdRng::seed_from_u64(0x1E6);
    let classifier = hdc::learn::CentroidClassifier::from_class_vectors(vec![
        BinaryHypervector::random(256, &mut rng),
        BinaryHypervector::random(256, &mut rng),
    ])
    .expect("non-empty");
    let mut fleet: ShardedModel<String> =
        ShardedModel::new(classifier, 256, 2, 3).expect("valid fleet");

    // Churn with no entries at all: nothing to move, nothing recorded.
    let empty_add = fleet.add_shard();
    assert!(fleet.remove_shard(empty_add));
    assert!(fleet.last_remap_fraction().is_none());
    assert!(fleet.remove(&"absent".to_string()).is_none());

    // A key re-inserted with a new value must survive churn as that value.
    let stale = BinaryHypervector::random(256, &mut rng);
    let fresh = BinaryHypervector::random(256, &mut rng);
    assert!(fleet.insert("profile".to_string(), stale.clone()).is_none());
    assert_eq!(
        fleet.insert("profile".to_string(), fresh.clone()),
        Some(stale)
    );
    let added = fleet.add_shard();
    assert_eq!(fleet.get(&"profile".to_string()), Some(&fresh));
    assert!(fleet.remove_shard(added));
    assert_eq!(fleet.get(&"profile".to_string()), Some(&fresh));
    assert_eq!(fleet.len(), 1);
    assert_eq!(fleet.remove(&"profile".to_string()), Some(fresh));
    assert!(fleet.is_empty());
}

/// Non-proptest check: routed sub-batches ship every row exactly once even
/// when some shards receive nothing.
#[test]
fn empty_shard_groups_are_harmless() {
    let model = trained_model(256, 7);
    let fleet: ShardedModel<&str> = ShardedModel::from_model(&model, 6, 1).unwrap();
    // One single query cannot cover 6 shards; 5 groups stay empty.
    let encoded = model.encode_batch(&[Radians(1.0)]);
    let sharded = fleet.predict_batch(&["lonely"], &encoded).unwrap();
    assert_eq!(sharded, model.predict_encoded(&encoded));
    let empty: HypervectorBatch = HypervectorBatch::new(256);
    assert_eq!(
        fleet.predict_batch::<&str>(&[], &empty).unwrap(),
        Vec::<usize>::new()
    );
}
