//! Cross-crate property tests of the basis-hypervector constructions:
//! the statistical laws the paper states, checked end-to-end through the
//! facade crate.

use hdc::basis::{analysis, markov, BasisSet, CircularBasis, LevelBasis, ScatterBasis};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Proposition 4.1: E[δ(L_i, L_j)] = (j−i)/(2(m−1)).
    #[test]
    fn level_distance_law(seed in 0u64..50, m in 3usize..12) {
        let mut rng = StdRng::seed_from_u64(seed);
        let basis = LevelBasis::new(m, 16_384, &mut rng).unwrap();
        for i in 0..m {
            for j in (i + 1)..m {
                let expected = basis.expected_distance(i, j);
                let actual = basis.get(i).normalized_hamming(basis.get(j));
                prop_assert!((actual - expected).abs() < 0.04,
                    "i={} j={} expected={} actual={}", i, j, expected, actual);
            }
        }
    }

    /// §5.1: circular distances are proportional to arc distance and the
    /// antipode is quasi-orthogonal, from *every* starting point.
    #[test]
    fn circular_distance_law(seed in 0u64..50, half in 2usize..8) {
        let m = 2 * half;
        let mut rng = StdRng::seed_from_u64(seed);
        let basis = CircularBasis::new(m, 16_384, &mut rng).unwrap();
        for i in 0..m {
            for j in 0..m {
                let expected = basis.expected_distance(i, j);
                let actual = basis.get(i).normalized_hamming(basis.get(j));
                prop_assert!((actual - expected).abs() < 0.05,
                    "i={} j={} expected={} actual={}", i, j, expected, actual);
            }
        }
    }

    /// §4.2: the expected-flip schedule is strictly increasing and
    /// superlinear, and both independent computations agree.
    #[test]
    fn markov_flip_schedule(dim in 64usize..2048) {
        let quarter = markov::expected_flips(dim, dim / 4);
        let half = markov::expected_flips(dim, dim / 2);
        prop_assert!(half > quarter);
        prop_assert!(quarter >= (dim / 4) as f64);
        let tri = markov::expected_flips_tridiagonal(dim, dim / 4);
        prop_assert!((quarter - tri).abs() / quarter < 1e-6);
    }
}

#[test]
fn scatter_codes_approximate_linear_targets() {
    // Averaged over seeds, scatter-code distances track the level law.
    let m = 7;
    let trials = 6;
    let mut mean_profile = vec![0.0; m];
    for seed in 0..trials {
        let mut rng = StdRng::seed_from_u64(seed);
        let basis = ScatterBasis::new(m, 8_192, &mut rng).unwrap();
        let profile = analysis::similarity_profile(&basis, 0);
        for (acc, p) in mean_profile.iter_mut().zip(profile) {
            *acc += p / trials as f64;
        }
    }
    for (j, sim) in mean_profile.iter().enumerate() {
        let expected = 1.0 - j as f64 / (2.0 * (m as f64 - 1.0));
        assert!(
            (sim - expected).abs() < 0.05,
            "level {j}: mean similarity {sim} vs designed {expected}"
        );
    }
}

#[test]
fn randomness_parameter_interpolates_monotonically() {
    // Similarity across a quarter of the circle decays as r goes from 0
    // (structured: 1 − 3/12 = 0.75) to 1 (quasi-orthogonal: 0.5).
    let quarter_similarity = |r: f64| {
        let mut rng = StdRng::seed_from_u64(404);
        let basis = CircularBasis::with_randomness(12, 8_192, r, &mut rng).unwrap();
        basis.get(0).similarity(basis.get(9))
    };
    let structured = quarter_similarity(0.0);
    let half = quarter_similarity(0.5);
    let random = quarter_similarity(1.0);
    assert!(
        (structured - 0.75).abs() < 0.05,
        "structured = {structured}"
    );
    assert!(structured > half + 0.05, "{structured} vs {half}");
    assert!(half > random - 0.05, "{half} vs {random}");
    assert!((random - 0.5).abs() < 0.05);
}
