//! Cross-crate integration: the full classification pipeline through the
//! facade crate — dataset generation → per-channel encoding → record
//! encoding → centroid training → evaluation.

use hdc::basis::BasisKind;
use hdc::core::BinaryHypervector;
use hdc::datasets::jigsaws::{JigsawsConfig, JigsawsSample, JigsawsTask, TRAIN_SURGEON};
use hdc::encode::RecordEncoder;
use hdc::learn::{metrics, AdaptiveClassifier, CentroidClassifier};
use rand::{rngs::StdRng, SeedableRng};

const DIM: usize = 2_048;
const BINS: usize = 16;

fn small_config() -> JigsawsConfig {
    JigsawsConfig {
        trials_per_surgeon: 1,
        frames_per_trial: 6,
        ..JigsawsConfig::default()
    }
}

fn encode_all(
    kind: BasisKind,
    samples: &[&JigsawsSample],
    seed: u64,
) -> Vec<(BinaryHypervector, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let encoders: Vec<Vec<BinaryHypervector>> = (0..18)
        .map(|_| {
            kind.build(BINS, DIM, &mut rng)
                .expect("valid")
                .hypervectors()
                .to_vec()
        })
        .collect();
    let record = RecordEncoder::new(18, DIM, &mut rng).expect("valid");
    let tau = std::f64::consts::TAU;
    samples
        .iter()
        .map(|s| {
            let values: Vec<&BinaryHypervector> = s
                .angles
                .iter()
                .zip(&encoders)
                .map(|(&a, hvs)| {
                    &hvs[((a.rem_euclid(tau) / tau * BINS as f64) as usize).min(BINS - 1)]
                })
                .collect();
            (record.encode(&values, &mut rng).expect("arity"), s.gesture)
        })
        .collect()
}

#[test]
fn circular_basis_beats_chance_decisively() {
    let data = JigsawsTask::KnotTying.generate(&small_config());
    let (train, test) = data.train_test_split(TRAIN_SURGEON);
    let kind = BasisKind::Circular { randomness: 0.1 };
    let encoded_train = encode_all(kind, &train, 5);
    let encoded_test = encode_all(kind, &test, 5);

    let mut rng = StdRng::seed_from_u64(5);
    let model = CentroidClassifier::fit(
        encoded_train.iter().map(|(h, l)| (h, *l)),
        data.gesture_count,
        DIM,
        &mut rng,
    )
    .expect("valid");

    let predicted: Vec<usize> = encoded_test.iter().map(|(h, _)| model.predict(h)).collect();
    let truth: Vec<usize> = encoded_test.iter().map(|(_, l)| *l).collect();
    let accuracy = metrics::accuracy(&predicted, &truth);
    let chance = 1.0 / data.gesture_count as f64;
    assert!(
        accuracy > 3.0 * chance,
        "accuracy {accuracy} vs chance {chance}"
    );
}

#[test]
fn circular_outperforms_random_on_circular_data() {
    // The paper's headline classification claim, as an integration test.
    let data = JigsawsTask::Suturing.generate(&small_config());
    let (train, test) = data.train_test_split(TRAIN_SURGEON);

    let accuracy_of = |kind: BasisKind| {
        let encoded_train = encode_all(kind, &train, 9);
        let encoded_test = encode_all(kind, &test, 9);
        let mut rng = StdRng::seed_from_u64(9);
        let model = CentroidClassifier::fit(
            encoded_train.iter().map(|(h, l)| (h, *l)),
            data.gesture_count,
            DIM,
            &mut rng,
        )
        .expect("valid");
        let predicted: Vec<usize> = encoded_test.iter().map(|(h, _)| model.predict(h)).collect();
        let truth: Vec<usize> = encoded_test.iter().map(|(_, l)| *l).collect();
        metrics::accuracy(&predicted, &truth)
    };

    let circular = accuracy_of(BasisKind::Circular { randomness: 0.1 });
    let random = accuracy_of(BasisKind::Random);
    assert!(
        circular > random + 0.03,
        "circular {circular} should clearly beat random {random}"
    );
}

#[test]
fn adaptive_refinement_does_not_hurt() {
    let data = JigsawsTask::KnotTying.generate(&small_config());
    let (train, test) = data.train_test_split(TRAIN_SURGEON);
    let kind = BasisKind::Circular { randomness: 0.1 };
    let encoded_train = encode_all(kind, &train, 31);
    let encoded_test = encode_all(kind, &test, 31);

    let mut rng = StdRng::seed_from_u64(31);
    let centroid = CentroidClassifier::fit(
        encoded_train.iter().map(|(h, l)| (h, *l)),
        data.gesture_count,
        DIM,
        &mut rng,
    )
    .expect("valid");
    let mut adaptive = AdaptiveClassifier::fit(
        encoded_train.iter().map(|(h, l)| (h, *l)),
        data.gesture_count,
        DIM,
    )
    .expect("valid");
    adaptive.refine(encoded_train.iter().map(|(h, l)| (h, *l)), 5);
    let adaptive = adaptive.finish(&mut rng);

    let score = |m: &CentroidClassifier| {
        let predicted: Vec<usize> = encoded_test.iter().map(|(h, _)| m.predict(h)).collect();
        let truth: Vec<usize> = encoded_test.iter().map(|(_, l)| *l).collect();
        metrics::accuracy(&predicted, &truth)
    };
    assert!(score(&adaptive) >= score(&centroid) - 0.05);
}

#[test]
fn deterministic_end_to_end() {
    let data = JigsawsTask::NeedlePassing.generate(&small_config());
    let (train, _) = data.train_test_split(TRAIN_SURGEON);
    let a = encode_all(BasisKind::Random, &train, 77);
    let b = encode_all(BasisKind::Random, &train, 77);
    assert_eq!(a, b, "same seed, same pipeline, same encodings");
}
