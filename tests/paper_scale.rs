//! Paper-exact-scale statistical checks, opt-in because they are the
//! heaviest suites in the workspace (full 10k–20k dimensional bases and
//! exhaustive O(m²) distance sweeps).
//!
//! The default `cargo test` run exercises the same invariants at reduced
//! case counts (see the per-crate unit tests and `basis_invariants.rs`);
//! this suite re-checks them at the dimensions and set sizes the paper
//! actually reports, so the tolerances can be tight. Run with:
//!
//! ```text
//! cargo test --release --features expensive-tests --test paper_scale
//! ```
#![cfg(feature = "expensive-tests")]

use hdc::basis::{BasisSet, CircularBasis, LevelBasis, RandomBasis};
use hdc::DEFAULT_DIMENSION;
use rand::{rngs::StdRng, SeedableRng};

/// §5.1 at paper scale: the full m = 64 circular set at d = 20_000 keeps
/// every pairwise distance within 3% of the arc-distance law.
#[test]
fn circular_distance_law_full_scale() {
    let m = 64;
    let mut rng = StdRng::seed_from_u64(0xD6C);
    let basis = CircularBasis::new(m, 20_000, &mut rng).unwrap();
    for i in 0..m {
        for j in 0..m {
            let expected = basis.expected_distance(i, j);
            let actual = basis.get(i).normalized_hamming(basis.get(j));
            assert!(
                (actual - expected).abs() < 0.03,
                "i={i} j={j} expected={expected:.4} actual={actual:.4}"
            );
        }
    }
}

/// Proposition 4.1 at paper scale: m = 32 interpolation levels at
/// d = 20_000 follow the linear distance law within 2.5%.
#[test]
fn level_distance_law_full_scale() {
    let m = 32;
    let mut rng = StdRng::seed_from_u64(0x1E7);
    let basis = LevelBasis::new(m, 20_000, &mut rng).unwrap();
    for i in 0..m {
        for j in (i + 1)..m {
            let expected = basis.expected_distance(i, j);
            let actual = basis.get(i).normalized_hamming(basis.get(j));
            assert!(
                (actual - expected).abs() < 0.025,
                "i={i} j={j} expected={expected:.4} actual={actual:.4}"
            );
        }
    }
}

/// §3.1 at paper scale: a large random set at the paper's default
/// dimension is quasi-orthogonal everywhere, with tight concentration.
#[test]
fn random_basis_concentration_full_scale() {
    let m = 128;
    let mut rng = StdRng::seed_from_u64(0xA11);
    let basis = RandomBasis::new(m, DEFAULT_DIMENSION, &mut rng).unwrap();
    for i in 0..m {
        for j in (i + 1)..m {
            let d = basis.get(i).normalized_hamming(basis.get(j));
            assert!((d - 0.5).abs() < 0.025, "i={i} j={j} d={d:.4}");
        }
    }
}

/// §5.2 at paper scale: the randomness sweep interpolates circular sets
/// monotonically towards quasi-orthogonality at the antipode while the
/// wrap-around neighbour distance grows with r.
#[test]
fn randomness_sweep_full_scale() {
    let m = 16;
    let mut last_wrap = 0.0;
    for (step, r) in [0.0, 0.25, 0.5, 0.75, 1.0].into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(0x5EED + step as u64);
        let basis = CircularBasis::with_randomness(m, DEFAULT_DIMENSION, r, &mut rng).unwrap();
        let wrap = basis.get(0).normalized_hamming(basis.get(m - 1));
        assert!(
            wrap + 0.03 >= last_wrap,
            "wrap distance not monotone in r: r={r} wrap={wrap:.4} previous={last_wrap:.4}"
        );
        last_wrap = wrap;
    }
    // r = 1 collapses to a fully random set: neighbours quasi-orthogonal.
    assert!(
        (last_wrap - 0.5).abs() < 0.05,
        "r=1 wrap distance {last_wrap:.4}"
    );
}
