//! End-to-end tests of the serving runtime and its framed-TCP front-end.
//!
//! Two acceptance criteria live here:
//!
//! * **Wire bit-identity** — predictions served over the loopback TCP
//!   protocol are bit-identical to calling the trained `Model` (and the
//!   `ShardedModel`) directly, including under concurrent clients whose
//!   requests coalesce into shared micro-batches.
//! * **Generation integrity** — under concurrent online fitting and
//!   predicting, every reader observes a *complete* class-vector
//!   generation (bit-identical to the classifier deterministically
//!   recomputed for that generation id — never a torn mix of two), and
//!   generation ids are monotonically non-decreasing per reader.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use hdc::core::TieBreak;
use hdc::learn::CentroidTrainer;
use hdc::serve::Radians;
use hdc::{
    Basis, BatchPolicy, BinaryHypervector, BlockingClient, Enc, Model, Pipeline, Runtime,
    RuntimeConfig, Server, ShardedModel,
};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

/// A small trained angle pipeline (day/night over the 24-hour circle).
/// Deterministic per seed, so two calls yield bit-identical models.
fn trained_model(dim: usize, seed: u64) -> Model<Radians> {
    let mut model = Pipeline::builder(dim)
        .seed(seed)
        .classes(2)
        .basis(Basis::Circular { m: 24, r: 0.0 })
        .encoder(Enc::angle())
        .build()
        .expect("valid pipeline");
    let hours: Vec<Radians> = (0..48)
        .map(|i| Radians::periodic(f64::from(i) / 2.0, 24.0))
        .collect();
    let labels: Vec<usize> = (0..48).map(|i| usize::from(i >= 24)).collect();
    model
        .fit_batch(&hours, &labels)
        .expect("valid training set");
    model
}

fn serving_config(shards: usize, max_batch: usize) -> RuntimeConfig {
    RuntimeConfig {
        shards,
        policy: BatchPolicy {
            max_batch,
            max_wait: Duration::from_micros(300),
        },
        refresh_every: 0,
        ..RuntimeConfig::default()
    }
}

/// Acceptance criterion: the loopback service answers bit-identically to
/// the direct model, for single predictions, batches, and concurrent
/// clients sharing the runtime's micro-batches.
#[test]
fn framed_tcp_predictions_are_bit_identical_to_the_direct_model() {
    let model = trained_model(512, 11);
    let inputs: Vec<Radians> = (0..60).map(|i| Radians(f64::from(i) * 0.11)).collect();
    let queries = model.encode_batch(&inputs);
    let expected = model.predict_encoded(&queries);
    // The sharded fleet agrees with the model, and the service must agree
    // with both.
    let keys: Vec<String> = (0..inputs.len()).map(|i| format!("user-{i}")).collect();
    let fleet: ShardedModel<String> = ShardedModel::from_model(&model, 3, 0).expect("valid fleet");
    assert_eq!(
        fleet.predict_batch(&keys, &queries).expect("routable"),
        expected
    );

    // Same seed + training → a bit-identical model for the runtime to own.
    let runtime =
        Runtime::spawn(trained_model(512, 11), serving_config(3, 16)).expect("valid runtime");
    let server = Server::spawn("127.0.0.1:0", runtime.handle()).expect("ephemeral port");
    let addr = server.local_addr();

    // One client, one request frame per query.
    let mut client = BlockingClient::connect(addr).expect("loopback connect");
    for ((key, row), &label) in keys.iter().zip(queries.rows()).zip(&expected) {
        let prediction = client
            .predict(key, &row.to_hypervector())
            .expect("served prediction");
        assert_eq!(prediction.label, label, "key {key}");
        assert_eq!(prediction.generation, 0);
    }
    // One client, one batch frame.
    let pairs: Vec<(String, BinaryHypervector)> = keys
        .iter()
        .cloned()
        .zip(queries.rows().map(|row| row.to_hypervector()))
        .collect();
    let batched = client.predict_batch(pairs.clone()).expect("served batch");
    assert_eq!(
        batched.iter().map(|p| p.label).collect::<Vec<_>>(),
        expected
    );

    // Four concurrent clients: their frames interleave on the queue and
    // coalesce into shared micro-batches; answers must not change.
    let pairs = Arc::new(pairs);
    let expected = Arc::new(expected);
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let pairs = Arc::clone(&pairs);
            let expected = Arc::clone(&expected);
            thread::spawn(move || {
                let mut client = BlockingClient::connect(addr).expect("loopback connect");
                for ((key, hv), &label) in pairs.iter().zip(expected.iter()) {
                    let prediction = client.predict(key, hv).expect("served prediction");
                    assert_eq!(prediction.label, label, "key {key}");
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client thread");
    }

    // insert/remove/stats drive the item-memory and metrics paths.
    assert!(!client
        .insert("user-0", &queries.to_hypervector(0))
        .expect("insert"));
    assert!(client
        .insert("user-0", &queries.to_hypervector(1))
        .expect("re-insert"));
    let added = client.add_shard().expect("add shard");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.dim, 512);
    assert_eq!(stats.classes, 2);
    assert_eq!(stats.keys, 1);
    assert_eq!(stats.shard_loads.len(), 4);
    assert_eq!(stats.generation, 0);
    // 60 singles + 60 batch rows + 4×60 concurrent singles.
    assert_eq!(stats.metrics.requests, 360);
    assert!(stats.metrics.batches > 0);
    assert!(stats.metrics.mean_batch_size >= 1.0);
    assert!(client.remove_shard(added).expect("remove shard"));
    assert!(client.remove("user-0").expect("remove"));
    assert!(!client.remove("user-0").expect("second remove"));

    server.shutdown();
    runtime.shutdown();
}

/// Online learning over the wire: fit + refresh change predictions, the
/// generation id rises, and the trainer state survives shutdown.
#[test]
fn online_fit_over_the_wire_publishes_new_generations() {
    // Spawn an *untrained* pipeline and teach it entirely over TCP.
    let blank = Pipeline::builder(512)
        .seed(4)
        .classes(2)
        .basis(Basis::Circular { m: 24, r: 0.0 })
        .encoder(Enc::angle())
        .build()
        .expect("valid pipeline");
    // A reference model encodes queries client-side (same seed → same
    // encoder) and predicts the expected labels after training.
    let reference = trained_model(512, 4);

    let runtime = Runtime::spawn(blank, serving_config(1, 8)).expect("valid runtime");
    let server = Server::spawn("127.0.0.1:0", runtime.handle()).expect("ephemeral port");
    let mut client = BlockingClient::connect(server.local_addr()).expect("connect");

    let hours: Vec<Radians> = (0..48)
        .map(|i| Radians::periodic(f64::from(i) / 2.0, 24.0))
        .collect();
    for (i, hour) in hours.iter().enumerate() {
        client
            .fit(&reference.encode(hour), usize::from(i >= 24))
            .expect("fit ack");
    }
    let generation = client.refresh().expect("refresh");
    assert_eq!(generation, 1);

    // The service now agrees with the reference model trained on the same
    // 48 observations (same accumulators, same deterministic finalize).
    for hour in &hours {
        let prediction = client
            .predict("probe", &reference.encode(hour))
            .expect("served prediction");
        assert_eq!(prediction.label, reference.predict(hour));
        assert_eq!(prediction.generation, 1);
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.generation, 1);
    assert_eq!(stats.metrics.fits, 48);

    server.shutdown();
    let (_, learner) = runtime.shutdown();
    assert_eq!(learner.as_classify().unwrap().counts(), &[24, 24]);
}

/// A small trained regression pipeline over the same daily circle
/// (hour-of-day as the real-valued label). Deterministic per seed.
fn trained_value_model(dim: usize, seed: u64) -> Model<Radians> {
    let mut model = Pipeline::builder(dim)
        .seed(seed)
        .regression(0.0, 24.0, 24)
        .basis(Basis::Circular { m: 24, r: 0.0 })
        .encoder(Enc::angle())
        .build()
        .expect("valid pipeline");
    let hours: Vec<Radians> = (0..48)
        .map(|i| Radians::periodic(f64::from(i) / 2.0, 24.0))
        .collect();
    let values: Vec<f64> = (0..48).map(|i| f64::from(i) / 2.0).collect();
    model
        .fit_value_batch(&hours, &values)
        .expect("valid training set");
    model
}

/// Acceptance criterion (PR 5): `predict_value` over framed TCP matches
/// direct `Model::predict_value` **exactly** (bit-identical f64s), for
/// single clients and for concurrent clients whose requests coalesce into
/// shared micro-batches — and the `ping` probe answers without issuing a
/// prediction.
#[test]
fn framed_tcp_value_predictions_are_bit_identical_to_the_direct_model() {
    let model = trained_value_model(512, 19);
    let inputs: Vec<Radians> = (0..60).map(|i| Radians(f64::from(i) * 0.11)).collect();
    let queries = model.encode_batch(&inputs);
    let expected = model.predict_values_encoded(&queries);
    let keys: Vec<String> = (0..inputs.len()).map(|i| format!("station-{i}")).collect();
    // The sharded fleet agrees with the model, and the service must agree
    // with both.
    let fleet: ShardedModel<String> = ShardedModel::from_model(&model, 3, 0).expect("valid fleet");
    assert_eq!(
        fleet.predict_values(&keys, &queries).expect("routable"),
        expected
    );

    let runtime =
        Runtime::spawn(trained_value_model(512, 19), serving_config(3, 16)).expect("valid runtime");
    let server = Server::spawn("127.0.0.1:0", runtime.handle()).expect("ephemeral port");
    let addr = server.local_addr();

    // One client, one request frame per query.
    let mut client = BlockingClient::connect(addr).expect("loopback connect");
    for ((key, row), &value) in keys.iter().zip(queries.rows()).zip(&expected) {
        let prediction = client
            .predict_value(key, &row.to_hypervector())
            .expect("served value");
        assert_eq!(prediction.value, value, "key {key}");
        assert_eq!(prediction.generation, 0);
    }

    // The ping probe reports liveness without touching the queue: the
    // request counter must not move.
    let before = client.stats().expect("stats").metrics.requests;
    let (generation, uptime_us) = client.ping().expect("pong");
    assert_eq!(generation, 0);
    assert!(uptime_us > 0);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.metrics.requests, before, "ping issued no prediction");
    assert_eq!(stats.classes, 0, "regression stats carry no class set");
    assert!(stats.uptime_us >= uptime_us);

    // Four concurrent clients: interleaved value frames coalesce into
    // shared micro-batches; answers must not change.
    let pairs: Vec<(String, BinaryHypervector)> = keys
        .iter()
        .cloned()
        .zip(queries.rows().map(|row| row.to_hypervector()))
        .collect();
    let pairs = Arc::new(pairs);
    let expected = Arc::new(expected);
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let pairs = Arc::clone(&pairs);
            let expected = Arc::clone(&expected);
            thread::spawn(move || {
                let mut client = BlockingClient::connect(addr).expect("loopback connect");
                for ((key, hv), &value) in pairs.iter().zip(expected.iter()) {
                    let prediction = client.predict_value(key, hv).expect("served value");
                    assert_eq!(prediction.value, value, "key {key}");
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client thread");
    }

    // A classification frame against a regression runtime is answered
    // in-band with an error; the connection survives.
    assert!(client.predict("station-0", &pairs[0].1).is_err());
    let (generation, _) = client.ping().expect("connection survived");
    assert_eq!(generation, 0);

    server.shutdown();
    let (_, learner) = runtime.shutdown();
    assert_eq!(learner.observed(), 48);
}

/// Online regression learning over the wire: `fit_value` + `refresh`
/// publish a generation whose served values equal the reference model
/// trained on the same observations.
#[test]
fn online_value_fit_over_the_wire_publishes_new_generations() {
    let blank = Pipeline::builder(512)
        .seed(23)
        .regression(0.0, 24.0, 24)
        .basis(Basis::Circular { m: 24, r: 0.0 })
        .encoder(Enc::angle())
        .build()
        .expect("valid pipeline");
    let reference = trained_value_model(512, 23);

    let runtime = Runtime::spawn(blank, serving_config(1, 8)).expect("valid runtime");
    let server = Server::spawn("127.0.0.1:0", runtime.handle()).expect("ephemeral port");
    let mut client = BlockingClient::connect(server.local_addr()).expect("connect");

    let hours: Vec<Radians> = (0..48)
        .map(|i| Radians::periodic(f64::from(i) / 2.0, 24.0))
        .collect();
    for (i, hour) in hours.iter().enumerate() {
        client
            .fit_value(&reference.encode(hour), f64::from(i as u32) / 2.0)
            .expect("fit ack");
    }
    let generation = client.refresh().expect("refresh");
    assert_eq!(generation, 1);

    for hour in &hours {
        let prediction = client
            .predict_value("probe", &reference.encode(hour))
            .expect("served value");
        assert_eq!(prediction.value, reference.predict_value(hour));
        assert_eq!(prediction.generation, 1);
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.metrics.fits, 48);
    let (generation, _) = client.ping().expect("pong");
    assert_eq!(generation, 1);

    server.shutdown();
    let (_, learner) = runtime.shutdown();
    assert_eq!(
        learner.as_regress().expect("regression learner").observed(),
        48
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Acceptance criterion: concurrent online fitting and predicting never
    /// exposes a torn classifier. Every `Generation` snapshot a reader
    /// takes must be bit-identical to the classifier deterministically
    /// recomputed from the first `id · refresh_every` observations, every
    /// served prediction must match that generation's classifier on its
    /// query, and ids must be monotonically non-decreasing per reader.
    #[test]
    fn concurrent_fit_and_predict_observe_only_complete_generations(
        seed in 0u64..500,
        refresh_every in 1usize..5,
        publishes in 2usize..6,
    ) {
        let dim = 256;
        let classes = 3;
        let blank = Pipeline::builder(dim)
            .seed(seed)
            .classes(classes)
            .encoder(Enc::angle())
            .build()
            .expect("valid pipeline");
        let config = RuntimeConfig {
            shards: 2,
            policy: BatchPolicy {
                max_batch: 4,
                max_wait: Duration::from_micros(100),
            },
            refresh_every,
            ..RuntimeConfig::default()
        };
        let runtime = Runtime::spawn(blank, config).expect("valid runtime");
        let handle = runtime.handle();

        // The deterministic observation stream, and the expected classifier
        // of every generation id: generation g is the finalize of the first
        // g · refresh_every observations (generation 0 is the untrained
        // finalize the runtime was spawned with).
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF17);
        let total = refresh_every * publishes;
        let observations: Vec<(BinaryHypervector, usize)> = (0..total)
            .map(|i| (BinaryHypervector::random(dim, &mut rng), i % classes))
            .collect();
        let queries: Vec<BinaryHypervector> = (0..8)
            .map(|_| BinaryHypervector::random(dim, &mut rng))
            .collect();
        let mut replica = CentroidTrainer::new(classes, dim).expect("valid trainer");
        let mut expected = vec![replica.finish_deterministic(TieBreak::Alternate)];
        for chunk in observations.chunks(refresh_every) {
            for (hv, label) in chunk {
                replica.observe(hv, *label).expect("valid label");
            }
            expected.push(replica.finish_deterministic(TieBreak::Alternate));
        }

        // Writer: feed the observations in order (one thread → the trainer
        // sees exactly the replica's order).
        let writer = {
            let handle = handle.clone();
            let observations = observations.clone();
            thread::spawn(move || {
                for (hv, label) in observations {
                    handle.fit_encoded(hv, label).expect("runtime is live");
                }
            })
        };
        // Readers: interleave raw generation snapshots with served
        // predictions while training runs.
        let readers: Vec<_> = (0..2)
            .map(|reader| {
                let handle = handle.clone();
                let queries = queries.clone();
                thread::spawn(move || {
                    let mut snapshots = Vec::new();
                    let mut served = Vec::new();
                    for round in 0..20 {
                        snapshots.push(handle.generation());
                        let query = &queries[(reader + round) % queries.len()];
                        let prediction = handle
                            .predict_encoded(format!("r{reader}-{round}"), query.clone())
                            .expect("runtime is live");
                        served.push(((reader + round) % queries.len(), prediction));
                    }
                    (snapshots, served)
                })
            })
            .collect();

        writer.join().expect("writer thread");
        let results: Vec<_> = readers
            .into_iter()
            .map(|reader| reader.join().expect("reader thread"))
            .collect();

        // Drain: after the writer is done the final generation must be the
        // last expected one (total / refresh_every publishes).
        let last = loop {
            let generation = handle.generation();
            if generation.id() == publishes as u64 {
                break generation;
            }
            prop_assert!(generation.id() < publishes as u64, "id overshot");
            thread::sleep(Duration::from_millis(1));
        };
        prop_assert_eq!(last.classifier(), &expected[publishes]);

        for (snapshots, served) in results {
            let mut previous = 0u64;
            for generation in snapshots {
                // Monotone, in range, and — the torn check — bit-identical
                // to the deterministic replay for that id.
                prop_assert!(generation.id() >= previous, "generation id went backwards");
                previous = generation.id();
                let id = usize::try_from(generation.id()).expect("small id");
                prop_assert!(id < expected.len(), "unknown generation id {id}");
                // The torn check: a partially swapped classifier would not
                // equal the deterministic replay of any single generation.
                prop_assert_eq!(generation.classifier(), &expected[id]);
            }
            let mut previous = 0u64;
            for (query_index, prediction) in served {
                prop_assert!(prediction.generation >= previous);
                previous = prediction.generation;
                let id = usize::try_from(prediction.generation).expect("small id");
                prop_assert!(id < expected.len());
                // A served label must match the complete generation that
                // reported it.
                prop_assert_eq!(prediction.label, expected[id].predict(&queries[query_index]));
            }
        }
        runtime.shutdown();
    }
}
