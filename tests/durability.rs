//! Property tests of the durability subsystem end to end: a durable
//! [`Runtime`] must recover **bit-identically** from snapshot + WAL
//! replay for both task families, tolerate a torn log tail by truncating
//! to an acknowledged prefix, refuse sealed-segment corruption and spec
//! mismatches loudly, and the paged item store must stay in lockstep
//! with the in-RAM reference while keeping residency under its budget.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use hdc::serve::Radians;
use hdc::{
    Basis, BinaryHypervector, DurabilityConfig, Enc, HdcError, ItemStore, Model, PagedStore,
    Pipeline, ResidentStore, Runtime, RuntimeConfig, SyncPolicy, WalCodec,
};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Fresh scratch directory per case; proptest cases within one test run
/// sequentially but the test binary runs tests in parallel threads.
static CASE: AtomicUsize = AtomicUsize::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "hdc-durability-{tag}-{}-{case}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn classify(seed: u64) -> Model<Radians> {
    Pipeline::builder(128)
        .seed(seed)
        .classes(3)
        .basis(Basis::Circular { m: 24, r: 0.0 })
        .encoder(Enc::angle())
        .build()
        .unwrap()
}

fn regress(seed: u64) -> Model<Radians> {
    Pipeline::builder(128)
        .seed(seed)
        .regression(0.0, 24.0, 24)
        .basis(Basis::Circular { m: 24, r: 0.0 })
        .encoder(Enc::angle())
        .build()
        .unwrap()
}

fn durable(dir: &Path, segment_bytes: u64, snapshot_every: u64) -> RuntimeConfig {
    RuntimeConfig {
        durability: Some(DurabilityConfig {
            segment_bytes,
            snapshot_every,
            ..DurabilityConfig::new(dir)
        }),
        ..RuntimeConfig::default()
    }
}

/// A deterministic labelled stream: hours on the daily circle.
fn stream(seed: u64, n: usize) -> Vec<(Radians, usize, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let hour = rng.random_range(0.0..24.0);
            (
                Radians::periodic(hour, 24.0),
                rng.random_range(0usize..3),
                hour,
            )
        })
        .collect()
}

fn probes() -> Vec<Radians> {
    (0..48)
        .map(|i| Radians::periodic(f64::from(i) / 2.0, 24.0))
        .collect()
}

/// The log segments under `dir`, oldest first (hex names sort by seq).
fn segments(dir: &Path) -> Vec<PathBuf> {
    let mut found: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|entry| entry.unwrap().path())
        .filter(|path| {
            path.file_name()
                .and_then(|name| name.to_str())
                .is_some_and(|name| name.starts_with("wal-") && name.ends_with(".log"))
        })
        .collect();
    found.sort();
    found
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Classification crash-recovery: a second life recovers every
    /// acknowledged fit and answers bit-identically to a reference model
    /// fed the same stream — with and without background snapshots in
    /// the mix.
    #[test]
    fn classification_recovery_is_bit_identical(
        seed in 0u64..1_000,
        n in 1usize..40,
        snap in 0u64..2,
    ) {
        let dir = scratch_dir("cls");
        let snapshot_every = snap * 5;
        let observations = stream(seed, n);

        let runtime = Runtime::spawn(classify(seed), durable(&dir, 1 << 22, snapshot_every)).unwrap();
        let handle = runtime.handle();
        for (hour, label, _) in &observations {
            handle.fit(hour, *label).unwrap();
        }
        runtime.shutdown();

        let runtime = Runtime::spawn(classify(seed), durable(&dir, 1 << 22, snapshot_every)).unwrap();
        let handle = runtime.handle();
        let recovered: Vec<usize> = probes()
            .iter()
            .map(|hour| handle.predict("k", hour).unwrap().label)
            .collect();
        let (_, learner) = runtime.shutdown();
        prop_assert_eq!(learner.observed(), n, "every acked fit must replay");

        let mut reference = classify(seed);
        for (hour, label, _) in &observations {
            reference.fit(hour, *label).unwrap();
        }
        let expected: Vec<usize> = probes().iter().map(|hour| reference.predict(hour)).collect();
        prop_assert_eq!(recovered, expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The regression twin of the property above: recovered value
    /// predictions are bit-exact `f64`s, not merely close.
    #[test]
    fn regression_recovery_is_bit_identical(
        seed in 0u64..1_000,
        n in 1usize..40,
        snap in 0u64..2,
    ) {
        let dir = scratch_dir("reg");
        let snapshot_every = snap * 5;
        let observations = stream(seed, n);

        let runtime = Runtime::spawn(regress(seed), durable(&dir, 1 << 22, snapshot_every)).unwrap();
        let handle = runtime.handle();
        for (hour, _, value) in &observations {
            handle.fit_value(hour, *value).unwrap();
        }
        runtime.shutdown();

        let runtime = Runtime::spawn(regress(seed), durable(&dir, 1 << 22, snapshot_every)).unwrap();
        let handle = runtime.handle();
        let recovered: Vec<f64> = probes()
            .iter()
            .map(|hour| handle.predict_value("k", hour).unwrap().value)
            .collect();
        let (_, learner) = runtime.shutdown();
        prop_assert_eq!(learner.observed(), n, "every acked fit must replay");

        let mut reference = regress(seed);
        for (hour, _, value) in &observations {
            reference.fit_value(hour, *value).unwrap();
        }
        let expected: Vec<f64> = probes().iter().map(|hour| reference.predict_value(hour)).collect();
        // Bit-exact equality, deliberately not an epsilon comparison.
        prop_assert_eq!(recovered, expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A torn tail — the crash landed mid-write — silently truncates the
    /// *last* segment to its longest valid prefix; recovery then equals a
    /// reference model fed exactly that prefix of the stream.
    #[test]
    fn torn_tail_recovers_an_exact_prefix(
        seed in 0u64..1_000,
        n in 8usize..32,
        cut in 1u64..200,
    ) {
        let dir = scratch_dir("torn");
        let observations = stream(seed, n);

        let runtime = Runtime::spawn(classify(seed), durable(&dir, 512, 0)).unwrap();
        let handle = runtime.handle();
        for (hour, label, _) in &observations {
            handle.fit(hour, *label).unwrap();
        }
        runtime.shutdown();

        // Tear the tail: chop `cut` bytes off the newest segment (maybe
        // the whole file, maybe into its header — all must be tolerated).
        let last = segments(&dir).pop().unwrap();
        let len = std::fs::metadata(&last).unwrap().len();
        let file = std::fs::OpenOptions::new().write(true).open(&last).unwrap();
        file.set_len(len.saturating_sub(cut)).unwrap();
        drop(file);

        let runtime = Runtime::spawn(classify(seed), durable(&dir, 512, 0)).unwrap();
        let handle = runtime.handle();
        let recovered: Vec<usize> = probes()
            .iter()
            .map(|hour| handle.predict("k", hour).unwrap().label)
            .collect();
        let (_, learner) = runtime.shutdown();
        let retained = learner.observed();
        prop_assert!(retained <= n);

        let mut reference = classify(seed);
        for (hour, label, _) in &observations[..retained] {
            reference.fit(hour, *label).unwrap();
        }
        let expected: Vec<usize> = probes().iter().map(|hour| reference.predict(hour)).collect();
        prop_assert_eq!(recovered, expected, "recovery must equal the retained prefix");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Damage anywhere in a *sealed* segment — a flipped byte in a frame
    /// header, CRC or payload — must refuse recovery loudly instead of
    /// serving a silently wrong model.
    #[test]
    fn sealed_segment_corruption_is_loud(
        seed in 0u64..1_000,
        offset in 0usize..10_000,
    ) {
        let dir = scratch_dir("seal");
        let observations = stream(seed, 24);

        let runtime = Runtime::spawn(classify(seed), durable(&dir, 128, 0)).unwrap();
        let handle = runtime.handle();
        for (hour, label, _) in &observations {
            handle.fit(hour, *label).unwrap();
        }
        runtime.shutdown();

        let sealed = segments(&dir);
        prop_assert!(sealed.len() >= 2, "need at least one sealed segment");
        let target = &sealed[0];
        let mut bytes = std::fs::read(target).unwrap();
        // Flip one byte past the 23-byte segment header, inside the frames.
        let header = 23;
        prop_assert!(bytes.len() > header);
        let index = header + offset % (bytes.len() - header);
        bytes[index] ^= 0xff;
        std::fs::write(target, &bytes).unwrap();

        prop_assert!(matches!(
            Runtime::spawn(classify(seed), durable(&dir, 128, 0)),
            Err(HdcError::Storage(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Mixed raw and adaptive segments in one log — the codec changed
    /// across restarts, so sealed segments carry different header codec
    /// bytes — replay bit-identically to a reference fed the whole
    /// stream.
    #[test]
    fn mixed_codec_segments_replay_bit_identically(
        seed in 0u64..1_000,
        n1 in 4usize..20,
        n2 in 4usize..20,
    ) {
        let dir = scratch_dir("mixed");
        let config = |codec| RuntimeConfig {
            durability: Some(DurabilityConfig {
                // Small segments force rotation, so both codecs seal
                // segments into the shared log.
                segment_bytes: 600,
                codec,
                ..DurabilityConfig::new(&dir)
            }),
            ..RuntimeConfig::default()
        };
        let observations = stream(seed, n1 + n2);

        let runtime = Runtime::spawn(classify(seed), config(WalCodec::Raw)).unwrap();
        let handle = runtime.handle();
        for (hour, label, _) in &observations[..n1] {
            handle.fit(hour, *label).unwrap();
        }
        runtime.shutdown();

        let runtime = Runtime::spawn(classify(seed), config(WalCodec::Adaptive)).unwrap();
        let handle = runtime.handle();
        for (hour, label, _) in &observations[n1..] {
            handle.fit(hour, *label).unwrap();
        }
        runtime.shutdown();

        let runtime = Runtime::spawn(classify(seed), config(WalCodec::Adaptive)).unwrap();
        let handle = runtime.handle();
        let recovered: Vec<usize> = probes()
            .iter()
            .map(|hour| handle.predict("k", hour).unwrap().label)
            .collect();
        let (_, learner) = runtime.shutdown();
        prop_assert_eq!(learner.observed(), n1 + n2, "every acked fit must replay");

        let mut reference = classify(seed);
        for (hour, label, _) in &observations {
            reference.fit(hour, *label).unwrap();
        }
        let expected: Vec<usize> = probes().iter().map(|hour| reference.predict(hour)).collect();
        prop_assert_eq!(recovered, expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// N concurrent durable writers under the group-commit scheduler:
    /// every acknowledged fit is recovered, and the recovered model
    /// answers bit-identically to a reference fed each writer's stream
    /// (the centroid fold is integer-commutative, so writer interleaving
    /// cannot matter).
    #[test]
    fn concurrent_writers_recover_every_acked_fit(
        seed in 0u64..1_000,
        writers in 2usize..5,
        per_writer in 1usize..16,
    ) {
        let dir = scratch_dir("writers");
        let config = || RuntimeConfig {
            durability: Some(DurabilityConfig {
                sync: SyncPolicy::Always,
                ..DurabilityConfig::new(&dir)
            }),
            ..RuntimeConfig::default()
        };
        let streams: Vec<Vec<(Radians, usize, f64)>> = (0..writers)
            .map(|w| stream(seed.wrapping_add(w as u64), per_writer))
            .collect();

        let runtime = Runtime::spawn(classify(seed), config()).unwrap();
        let handle = runtime.handle();
        std::thread::scope(|scope| {
            for observations in &streams {
                let handle = handle.clone();
                scope.spawn(move || {
                    for (hour, label, _) in observations {
                        handle.fit(hour, *label).unwrap();
                    }
                });
            }
        });
        runtime.shutdown();

        let runtime = Runtime::spawn(classify(seed), config()).unwrap();
        let handle = runtime.handle();
        let recovered: Vec<usize> = probes()
            .iter()
            .map(|hour| handle.predict("k", hour).unwrap().label)
            .collect();
        let (_, learner) = runtime.shutdown();
        prop_assert_eq!(
            learner.observed(),
            writers * per_writer,
            "every acked fit from every writer must replay"
        );

        let mut reference = classify(seed);
        for observations in &streams {
            for (hour, label, _) in observations {
                reference.fit(hour, *label).unwrap();
            }
        }
        let expected: Vec<usize> = probes().iter().map(|hour| reference.predict(hour)).collect();
        prop_assert_eq!(recovered, expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A torn write to the paged item plane — the crash chopped the tail
    /// of `pages.dat` — is healed by WAL replay: every acknowledged
    /// insert reads back bit-identically after recovery, because under
    /// [`SyncPolicy::Always`] the paged files share the WAL's commit
    /// boundary and the log re-applies inserts idempotently.
    #[test]
    fn paged_torn_write_is_healed_by_replay(
        seed in 0u64..1_000,
        keys in 4usize..16,
        cut in 1u64..300,
    ) {
        let dir = scratch_dir("paged-torn");
        let config = || RuntimeConfig {
            durability: Some(DurabilityConfig {
                sync: SyncPolicy::Always,
                page_cache: Some(2),
                ..DurabilityConfig::new(&dir)
            }),
            ..RuntimeConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let expected: Vec<(String, BinaryHypervector)> = (0..keys)
            .map(|i| (format!("k{i:03}"), BinaryHypervector::random(128, &mut rng)))
            .collect();

        let runtime = Runtime::spawn(classify(seed), config()).unwrap();
        let handle = runtime.handle();
        for (key, hv) in &expected {
            handle.insert(key.clone(), hv.clone()).unwrap();
        }
        runtime.shutdown();

        // Tear the page file's tail — a slot write the crash interrupted.
        // A torn slot can lose any suffix of the slot region but never
        // the 32-byte header, which was written (and synced) at creation.
        let pages = dir.join("items").join("pages.dat");
        let len = std::fs::metadata(&pages).unwrap().len();
        let cut = cut.min(len - 32);
        let file = std::fs::OpenOptions::new().write(true).open(&pages).unwrap();
        file.set_len(len - cut).unwrap();
        drop(file);

        // Recovery replays the log over the torn plane, then flushes it
        // on graceful shutdown.
        let runtime = Runtime::spawn(classify(seed), config()).unwrap();
        runtime.shutdown();

        let mut reopened = PagedStore::open(dir.join("items"), 128, 2).unwrap();
        prop_assert_eq!(reopened.entries().unwrap(), expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The paged item store is observationally identical to the in-RAM
    /// reference under arbitrary insert/remove/get interleavings, across
    /// a reopen, and never holds more than `budget` entries resident.
    #[test]
    fn paged_store_matches_resident_store(
        seed in 0u64..10_000,
        ops in 1usize..120,
        budget in 1usize..6,
    ) {
        let dir = scratch_dir("paged");
        let mut paged = PagedStore::open(dir.join("items"), 64, budget).unwrap();
        let mut resident = ResidentStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..ops {
            let key = format!("k{}", rng.random_range(0u32..20));
            match rng.random_range(0u8..4) {
                0 | 1 => {
                    let hv = BinaryHypervector::random(64, &mut rng);
                    prop_assert_eq!(
                        paged.insert(&key, &hv).unwrap(),
                        resident.insert(&key, &hv).unwrap()
                    );
                }
                2 => {
                    prop_assert_eq!(
                        paged.remove(&key).unwrap(),
                        resident.remove(&key).unwrap()
                    );
                }
                _ => {
                    prop_assert_eq!(
                        paged.get(&key).unwrap(),
                        resident.get(&key).unwrap()
                    );
                }
            }
            prop_assert!(paged.resident() <= budget, "cache budget violated");
            prop_assert_eq!(paged.len(), resident.len());
            prop_assert_eq!(paged.contains(&key), resident.contains(&key));
        }
        prop_assert_eq!(paged.entries().unwrap(), resident.entries().unwrap());

        // Reopen from disk: the bind log + pages must reproduce the map.
        paged.flush().unwrap();
        drop(paged);
        let mut reopened = PagedStore::open(dir.join("items"), 64, budget).unwrap();
        prop_assert_eq!(reopened.entries().unwrap(), resident.entries().unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// A segment header announcing a codec this build does not know must
/// refuse recovery loudly — from a newer build or plain corruption, the
/// records cannot be trusted, so they must never be silently skipped.
#[test]
fn unknown_wal_codec_is_loud_end_to_end() {
    let dir = scratch_dir("codec");
    let runtime = Runtime::spawn(classify(7), durable(&dir, 1 << 22, 0)).unwrap();
    runtime
        .handle()
        .fit(&Radians::periodic(4.0, 24.0), 1)
        .unwrap();
    runtime.shutdown();

    let target = &segments(&dir)[0];
    let mut bytes = std::fs::read(target).unwrap();
    // Byte 22 of a v2 header is the codec byte; 99 is not a codec.
    bytes[22] = 99;
    std::fs::write(target, &bytes).unwrap();

    match Runtime::spawn(classify(7), durable(&dir, 1 << 22, 0)) {
        Err(HdcError::Storage(message)) => {
            assert!(
                message.contains("codec"),
                "the refusal must name the codec: {message}"
            )
        }
        Err(other) => panic!("expected a storage error, got {other:?}"),
        Ok(_) => panic!("unknown codec must refuse recovery"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A durable directory written by one task family must refuse a runtime
/// of the other — the spec digest covers the task.
#[test]
fn cross_task_digest_mismatch_is_loud() {
    let dir = scratch_dir("digest");
    let runtime = Runtime::spawn(classify(3), durable(&dir, 1 << 22, 0)).unwrap();
    runtime
        .handle()
        .fit(&Radians::periodic(4.0, 24.0), 1)
        .unwrap();
    runtime.shutdown();
    assert!(matches!(
        Runtime::spawn(regress(3), durable(&dir, 1 << 22, 0)),
        Err(HdcError::Storage(_))
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}
