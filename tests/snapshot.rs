//! Acceptance tests of the spec-as-data + snapshot redesign:
//! `Pipeline::load` must reproduce the pre-snapshot model **bit-identically**
//! for both task families, across the whole spec space (dimensionality,
//! seed, basis family, encoder, task parameters) — and the spec's own
//! canonical encoding must round-trip and hash stably.

use hdc::serve::Radians;
use hdc::{Basis, EncSpec, FieldSpec, Model, Pipeline, PipelineSpec, Snapshot, Task};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A random basis of each family, sized to keep cases fast.
fn sample_basis(rng: &mut StdRng) -> Basis {
    let m = rng.random_range(3usize..24);
    let r = f64::from(rng.random_range(0u32..100)) / 100.0;
    match rng.random_range(0u8..3) {
        0 => Basis::Random { m },
        1 => Basis::Level { m, r },
        _ => Basis::Circular { m, r },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Spec encodings are canonical: to_bytes → from_bytes is the
    /// identity, hashes are stable, and a one-field change is visible in
    /// both.
    #[test]
    fn spec_bytes_and_hash_are_canonical(seed in 0u64..10_000, dim in 64usize..512) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = PipelineSpec {
            dim,
            seed: rng.random_range(0u64..1 << 40),
            basis: sample_basis(&mut rng),
            encoder: EncSpec::Record {
                fields: vec![
                    FieldSpec::scalar(-5.0, 5.0),
                    FieldSpec::angle(),
                    FieldSpec::categorical(rng.random_range(2usize..9)),
                ],
            },
            task: Task::Regression {
                low: 0.0,
                high: 10.0,
                levels: rng.random_range(2usize..33),
            },
        };
        let bytes = spec.to_bytes();
        let decoded = PipelineSpec::from_bytes(&bytes).expect("canonical bytes parse");
        prop_assert_eq!(&decoded, &spec);
        prop_assert_eq!(decoded.hash64(), spec.hash64());
        let mut tweaked = spec.clone();
        tweaked.seed ^= 1;
        prop_assert!(tweaked.hash64() != spec.hash64());
    }

    /// Classification: build over a random spec, train, snapshot, reload —
    /// the loaded model's classifier and every prediction are
    /// bit-identical, and training resumes identically on both copies.
    #[test]
    fn classification_load_is_bit_identical_over_spec_space(
        seed in 0u64..10_000,
        dim in 64usize..400,
        classes in 2usize..5,
        samples in 4usize..40,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC1A55);
        let spec = PipelineSpec {
            dim,
            seed,
            basis: sample_basis(&mut rng),
            encoder: EncSpec::Angle,
            task: Task::Classification { classes },
        };
        let mut model: Model<Radians> =
            Pipeline::from_spec(spec.clone()).expect("valid spec builds");
        let inputs: Vec<Radians> =
            (0..samples).map(|_| Radians(rng.random_range(0.0..7.0))).collect();
        let labels: Vec<usize> = (0..samples).map(|i| i % classes).collect();
        model.fit_batch(&inputs, &labels).expect("valid training set");

        let snapshot = Snapshot::from_bytes(&model.snapshot().to_bytes())
            .expect("snapshot bytes parse");
        prop_assert_eq!(snapshot.spec(), model.spec());
        prop_assert_eq!(snapshot.observed() as usize, samples);
        let restored: Model<Radians> =
            Pipeline::from_snapshot(&snapshot).expect("snapshot rebuilds");
        prop_assert_eq!(restored.classifier(), model.classifier());
        let probes: Vec<Radians> =
            (0..16).map(|_| Radians(rng.random_range(0.0..7.0))).collect();
        prop_assert_eq!(restored.predict_batch(&probes), model.predict_batch(&probes));

        // Resumed training stays in lockstep: the snapshot captured the
        // accumulators, not just the finalized head.
        let mut resumed = restored;
        let extra = Radians(rng.random_range(0.0..7.0));
        resumed.fit(&extra, 0).expect("valid label");
        model.fit(&extra, 0).expect("valid label");
        prop_assert_eq!(resumed.classifier(), model.classifier());
    }

    /// Regression: the same bit-identity guarantee for `predict_value`
    /// over a random record-encoder spec (exact f64 equality — the loaded
    /// model computes the identical integer readout).
    #[test]
    fn regression_load_is_bit_identical_over_spec_space(
        seed in 0u64..10_000,
        dim in 64usize..400,
        levels in 2usize..24,
        samples in 4usize..40,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4E64E);
        let spec = PipelineSpec {
            dim,
            seed,
            basis: sample_basis(&mut rng),
            encoder: EncSpec::Record {
                fields: vec![FieldSpec::scalar(0.0, 1.0), FieldSpec::angle()],
            },
            task: Task::Regression { low: 0.0, high: 1.0, levels },
        };
        let mut model: Model<[f64]> =
            Pipeline::from_spec(spec.clone()).expect("valid spec builds");
        let rows: Vec<Vec<f64>> = (0..samples)
            .map(|_| vec![rng.random_range(0.0..1.0), rng.random_range(0.0..7.0)])
            .collect();
        let values: Vec<f64> = (0..samples).map(|_| rng.random_range(0.0..1.0)).collect();
        model
            .fit_value_batch(rows.iter().map(Vec::as_slice), &values)
            .expect("valid training set");

        let snapshot = Snapshot::from_bytes(&model.snapshot().to_bytes())
            .expect("snapshot bytes parse");
        let restored: Model<[f64]> =
            Pipeline::from_snapshot(&snapshot).expect("snapshot rebuilds");
        let probes: Vec<Vec<f64>> = (0..16)
            .map(|_| vec![rng.random_range(0.0..1.0), rng.random_range(0.0..7.0)])
            .collect();
        for probe in &probes {
            // Exact equality, not tolerance: both models walk the same
            // counters through the same integer readout.
            prop_assert_eq!(
                restored.predict_value(&probe[..]),
                model.predict_value(&probe[..])
            );
        }
        prop_assert_eq!(restored.observed(), model.observed());
    }
}

/// File-level round trip: `Model::save` → `Pipeline::load`, plus the
/// spec-mismatch and corrupt-file rejections a warm-restart path relies
/// on.
#[test]
fn save_load_file_round_trip_and_rejections() {
    let path = std::env::temp_dir().join(format!(
        "hdc-snapshot-acceptance-{}.hdcs",
        std::process::id()
    ));
    let mut model: Model<f64> = Pipeline::builder(300)
        .seed(77)
        .regression(0.0, 100.0, 21)
        .encoder(hdc::Enc::scalar(0.0, 100.0))
        .build()
        .expect("valid pipeline");
    let xs: Vec<f64> = (0..60).map(|i| f64::from(i) * 100.0 / 59.0).collect();
    model.fit_value_batch(&xs, &xs).expect("valid training set");
    model.save(&path).expect("snapshot written");

    let restored: Model<f64> = Pipeline::load(&path).expect("snapshot loads");
    for x in &xs {
        assert_eq!(restored.predict_value(x), model.predict_value(x));
    }
    // Loading under the wrong input type is a spec mismatch, not garbage.
    assert!(matches!(
        Pipeline::load::<Radians>(&path),
        Err(hdc::HdcError::SpecMismatch {
            expected: "Angle",
            found: "Scalar"
        })
    ));
    // A flipped byte in the trainer state fails parsing loudly.
    let mut bytes = std::fs::read(&path).expect("file readable");
    let len = bytes.len();
    bytes.truncate(len - 3);
    std::fs::write(&path, bytes).expect("file writable");
    assert!(matches!(
        Pipeline::load::<f64>(&path),
        Err(hdc::HdcError::Snapshot(_))
    ));
    std::fs::remove_file(&path).expect("cleanup");
}
