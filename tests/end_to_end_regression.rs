//! Cross-crate integration: the full regression pipeline through the
//! facade crate on both regression surrogates.

use hdc::core::BinaryHypervector;
use hdc::datasets::beijing::{self, BeijingConfig, BeijingSample, DAYS_PER_YEAR};
use hdc::datasets::mars::{self, MarsConfig};
use hdc::encode::{AngleEncoder, ScalarEncoder};
use hdc::learn::{metrics, split, Readout, RegressionModel, RegressionTrainer};
use rand::{rngs::StdRng, SeedableRng};

const DIM: usize = 4_096;

#[test]
fn beijing_pipeline_beats_mean_baseline() {
    let mut rng = StdRng::seed_from_u64(13);
    // Two years minimum: a 70% temporal split of a single year would leave
    // the autumn/winter day-of-year range entirely unseen in training.
    let data = beijing::generate(&BeijingConfig {
        years: 2,
        ..BeijingConfig::default()
    });
    let (train, test) = data.temporal_split(0.7);

    let year_enc = ScalarEncoder::with_levels(0.0, 1.0, 4, DIM, &mut rng).expect("valid");
    let day_enc = AngleEncoder::with_circular(36, DIM, 0.01, &mut rng).expect("valid");
    let hour_enc = AngleEncoder::with_circular(24, DIM, 0.01, &mut rng).expect("valid");
    let encode = |s: &BeijingSample| -> BinaryHypervector {
        let mut hv = year_enc.encode(s.year).clone();
        hv.bind_assign(day_enc.encode_periodic(s.day_of_year, DAYS_PER_YEAR));
        hv.bind_assign(hour_enc.encode_periodic(s.hour, 24.0));
        hv
    };

    let (min_t, max_t) = data.temperature_range();
    let label = ScalarEncoder::with_levels(min_t, max_t, 32, DIM, &mut rng).expect("valid");
    let mut trainer = RegressionTrainer::new(label);
    for s in &train {
        trainer.observe(&encode(s), s.temperature);
    }
    let model = trainer.finish(&mut rng).expect("non-empty");

    let predicted: Vec<f64> = test.iter().map(|s| model.predict(&encode(s))).collect();
    let truth: Vec<f64> = test.iter().map(|s| s.temperature).collect();
    let mse = metrics::mse(&predicted, &truth);

    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let variance = truth.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / truth.len() as f64;
    assert!(
        mse < variance * 0.5,
        "mse {mse} must clearly beat variance {variance}"
    );
}

#[test]
fn mars_circular_model_tracks_the_orbit() {
    let mut rng = StdRng::seed_from_u64(14);
    let data = mars::generate(&MarsConfig::default());
    let (train_idx, test_idx) = split::random(data.samples.len(), 0.7, &mut rng);

    let anomaly_enc = AngleEncoder::with_circular(256, DIM, 0.01, &mut rng).expect("valid");
    let (min_p, max_p) = data.power_range();
    let label = ScalarEncoder::with_levels(min_p, max_p, 32, DIM, &mut rng).expect("valid");

    let mut trainer = RegressionTrainer::new(label);
    for &i in &train_idx {
        trainer.observe(
            anomaly_enc.encode(data.samples[i].mean_anomaly),
            data.samples[i].power,
        );
    }
    let model = trainer.finish(&mut rng).expect("non-empty");

    let predicted: Vec<f64> = test_idx
        .iter()
        .map(|&i| model.predict(anomaly_enc.encode(data.samples[i].mean_anomaly)))
        .collect();
    let truth: Vec<f64> = test_idx.iter().map(|&i| data.samples[i].power).collect();
    let r2 = metrics::r2(&predicted, &truth);
    assert!(r2 > 0.3, "R² = {r2}");
}

#[test]
fn integer_readout_dominates_binarized_on_level_encodings() {
    // The readout ablation end-to-end: single level-encoded feature.
    let mut rng = StdRng::seed_from_u64(15);
    let input = ScalarEncoder::with_levels(0.0, 1.0, 32, DIM, &mut rng).expect("valid");
    let pairs: Vec<(BinaryHypervector, f64)> = (0..150)
        .map(|i| {
            let x = i as f64 / 149.0;
            (input.encode(x).clone(), x)
        })
        .collect();

    let fit = |readout: Readout, rng: &mut StdRng| {
        let label = ScalarEncoder::with_levels(0.0, 1.0, 32, DIM, rng).expect("valid");
        RegressionModel::fit_with(pairs.iter().map(|(h, y)| (h, *y)), label, readout, rng)
            .expect("non-empty")
    };
    let integer = fit(Readout::Integer, &mut rng);
    let binarized = fit(Readout::Binarized, &mut rng);

    let mse_of = |m: &RegressionModel| {
        let preds: Vec<f64> = (0..50)
            .map(|i| m.predict(input.encode(i as f64 / 49.0)))
            .collect();
        let truth: Vec<f64> = (0..50).map(|i| i as f64 / 49.0).collect();
        metrics::mse(&preds, &truth)
    };
    assert!(mse_of(&integer) < mse_of(&binarized));
}

#[test]
fn kepler_substrate_feeds_the_dataset() {
    // The orbital mechanics must agree with the generated telemetry:
    // perihelion side brighter than aphelion side on average.
    let data = mars::generate(&MarsConfig {
        noise_std: 1.0,
        ..MarsConfig::default()
    });
    let perihelion = data.mean_power_in(0.0, 0.5);
    let aphelion = data.mean_power_in(2.9, 3.4);
    assert!(perihelion > aphelion + 30.0);
}

mod pruned_readout {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The coarse-to-fine integer readout is bit-identical to the full
        /// per-label walk on arbitrary trained models and arbitrary
        /// (including corrupted and purely random) queries — every branch
        /// of the prune logic must agree with `predict_row_full`.
        #[test]
        fn pruned_predict_matches_full_walk(
            seed in 0u64..10_000,
            dim in 1_024usize..3_000,
            levels in 4usize..40,
            samples in 1usize..60,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let input = ScalarEncoder::with_levels(0.0, 1.0, 32, dim, &mut rng).unwrap();
            let label = ScalarEncoder::with_levels(0.0, 1.0, levels, dim, &mut rng).unwrap();
            let mut trainer = RegressionTrainer::new(label);
            for i in 0..samples {
                let x = i as f64 / samples as f64;
                trainer.observe(&input.encode(x).corrupt(0.05, &mut rng), x);
            }
            let model = trainer.finish_integer();
            prop_assert!(model.is_pruned(), "dim={} clears the prune gate", dim);
            for _ in 0..8 {
                let q = if rng.random_bool(0.5) {
                    input.encode(rng.random_range(0.0..1.0)).corrupt(0.1, &mut rng)
                } else {
                    BinaryHypervector::random(dim, &mut rng)
                };
                prop_assert_eq!(model.predict(&q), model.predict_row_full(q.view()));
            }
        }
    }
}
