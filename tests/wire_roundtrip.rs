//! Property tests of the framed wire protocol: every opcode — including
//! the PR 6 cluster additions (`predict_value_batch`, snapshot streaming,
//! `shard_join`/`shard_leave`) — round-trips bit-exactly through its
//! frame encoding, and malformed frames (truncated anywhere, oversized
//! length prefix, wrong version) are rejected rather than trusted.

use hdc::serve::wire::{
    read_request, read_response, write_request, write_response, Request, Response, MAX_FRAME_BYTES,
    OP_ADD_SHARD, OP_FIT, OP_FIT_VALUE, OP_INSERT, OP_PING, OP_PREDICT, OP_PREDICT_BATCH,
    OP_PREDICT_VALUE, OP_PREDICT_VALUE_BATCH, OP_REFRESH, OP_REMOVE, OP_REMOVE_SHARD, OP_RESTORE,
    OP_SHARD_JOIN, OP_SHARD_LEAVE, OP_SNAPSHOT, OP_STATS, PROTOCOL_VERSION, RESP_ERROR,
    RESP_FIT_ACK, RESP_INSERTED, RESP_LABEL, RESP_LABELS, RESP_PONG, RESP_REFRESHED, RESP_REMOVED,
    RESP_RESTORED, RESP_SHARD_ADDED, RESP_SHARD_JOINED, RESP_SHARD_LEFT, RESP_SHARD_REMOVED,
    RESP_SNAPSHOT, RESP_STATS, RESP_VALUE, RESP_VALUES,
};
use hdc::serve::{MetricsSnapshot, RuntimeStats};
use hdc::BinaryHypervector;
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn hv(dim: usize, rng: &mut StdRng) -> BinaryHypervector {
    BinaryHypervector::random(dim, rng)
}

fn key(rng: &mut StdRng) -> String {
    let len = rng.random_range(0usize..24);
    (0..len)
        .map(|_| char::from(rng.random_range(b'a'..=b'z')))
        .collect()
}

/// Every request variant, with randomized payloads drawn from `rng`.
fn sample_requests(dim: usize, rng: &mut StdRng) -> Vec<Request> {
    vec![
        Request::Predict {
            key: key(rng),
            hv: hv(dim, rng),
        },
        Request::PredictBatch {
            pairs: (0..rng.random_range(0usize..5))
                .map(|_| (key(rng), hv(dim, rng)))
                .collect(),
        },
        Request::Insert {
            key: key(rng),
            hv: hv(dim, rng),
        },
        Request::Remove { key: key(rng) },
        Request::Fit {
            label: rng.random_range(0u32..1000),
            hv: hv(dim, rng),
        },
        Request::Refresh,
        Request::AddShard,
        Request::RemoveShard {
            id: rng.random_range(0u32..1000),
        },
        Request::Stats,
        Request::PredictValue {
            key: key(rng),
            hv: hv(dim, rng),
        },
        Request::FitValue {
            value: rng.random_range(-1e6..1e6),
            hv: hv(dim, rng),
        },
        Request::Ping,
        Request::PredictValueBatch {
            pairs: (0..rng.random_range(0usize..5))
                .map(|_| (key(rng), hv(dim, rng)))
                .collect(),
        },
        Request::Snapshot,
        Request::Restore {
            snapshot: (0..rng.random_range(0usize..64))
                .map(|_| rng.random_range(0u8..=255))
                .collect(),
        },
        Request::ShardJoin { addr: key(rng) },
        Request::ShardLeave {
            id: rng.random_range(0u32..1000),
        },
    ]
}

/// Every response variant, with randomized payloads drawn from `rng`.
fn sample_responses(rng: &mut StdRng) -> Vec<Response> {
    vec![
        Response::Label {
            label: rng.random_range(0u32..1000),
            generation: rng.random_range(0u64..1 << 40),
        },
        Response::Labels {
            predictions: (0..rng.random_range(0usize..6))
                .map(|_| (rng.random_range(0u32..100), rng.random_range(0u64..100)))
                .collect(),
        },
        Response::Inserted {
            replaced: rng.random_bool(0.5),
        },
        Response::Removed {
            removed: rng.random_bool(0.5),
        },
        Response::FitAck,
        Response::Refreshed {
            generation: rng.random_range(0u64..1 << 40),
        },
        Response::ShardAdded {
            id: rng.random_range(0u32..1000),
        },
        Response::ShardRemoved {
            removed: rng.random_bool(0.5),
        },
        Response::Stats(RuntimeStats {
            generation: rng.random_range(0u64..1 << 30),
            uptime_us: rng.random_range(0u64..1 << 50),
            name: key(rng),
            ring_positions: rng.random_range(0u64..1 << 16),
            dim: rng.random_range(1u64..1 << 20),
            classes: rng.random_range(0u64..64),
            shard_loads: (0..rng.random_range(0usize..5))
                .map(|_| (rng.random_range(0u64..16), rng.random_range(0u64..1000)))
                .collect(),
            keys: rng.random_range(0u64..1000),
            last_remap_fraction: if rng.random_bool(0.5) {
                Some(rng.random_range(0.0..1.0))
            } else {
                None
            },
            metrics: MetricsSnapshot {
                queue_depth: rng.random_range(0u64..100),
                requests: rng.random_range(0u64..1 << 30),
                batches: rng.random_range(0u64..1 << 20),
                inserts: rng.random_range(0u64..1000),
                removes: rng.random_range(0u64..1000),
                fits: rng.random_range(0u64..1000),
                mean_batch_size: rng.random_range(0.0..256.0),
                batch_sizes: (0..rng.random_range(0usize..8))
                    .map(|_| rng.random_range(0u64..1000))
                    .collect(),
                latency_us_p50: rng.random_range(0.0..1e5),
                latency_us_p95: rng.random_range(0.0..1e5),
                latency_us_p99: rng.random_range(0.0..1e5),
            },
        }),
        Response::Value {
            value: rng.random_range(-1e9..1e9),
            generation: rng.random_range(0u64..1 << 40),
        },
        Response::Pong {
            generation: rng.random_range(0u64..1 << 40),
            uptime_us: rng.random_range(0u64..1 << 50),
        },
        Response::Error { message: key(rng) },
        Response::Values {
            predictions: (0..rng.random_range(0usize..6))
                .map(|_| (rng.random_range(-1e6..1e6), rng.random_range(0u64..100)))
                .collect(),
        },
        Response::Snapshot {
            bytes: (0..rng.random_range(0usize..64))
                .map(|_| rng.random_range(0u8..=255))
                .collect(),
        },
        Response::Restored {
            generation: rng.random_range(0u64..1 << 40),
        },
        Response::ShardJoined {
            id: rng.random_range(0u32..1000),
            moved: rng.random_range(0u64..1 << 30),
        },
        Response::ShardLeft {
            removed: rng.random_bool(0.5),
            drained: rng.random_range(0u64..1 << 30),
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every request opcode round-trips bit-exactly at a random payload
    /// and dimensionality (including non-multiples of 64).
    #[test]
    fn every_request_opcode_round_trips(seed in 0u64..10_000, dim in 1usize..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        for request in sample_requests(dim, &mut rng) {
            let mut buffer = Vec::new();
            write_request(&mut buffer, &request).expect("encodable request");
            let decoded = read_request(&mut buffer.as_slice())
                .expect("decodable frame")
                .expect("one frame present");
            prop_assert_eq!(decoded, request);
        }
    }

    /// Every response opcode round-trips bit-exactly — f64 payloads
    /// (values, stats percentiles) included.
    #[test]
    fn every_response_opcode_round_trips(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        for response in sample_responses(&mut rng) {
            let mut buffer = Vec::new();
            write_response(&mut buffer, &response).expect("encodable response");
            let decoded = read_response(&mut buffer.as_slice())
                .expect("decodable frame")
                .expect("one frame present");
            prop_assert_eq!(decoded, response);
        }
    }

    /// A frame truncated at *any* interior byte is rejected (or, for a cut
    /// before the first payload byte, reported as clean end-of-stream) —
    /// never misparsed into a different message. Exercised for every PR 5
    /// and PR 6 opcode whose body mixes strings, f64s, raw byte blobs and
    /// hypervectors.
    #[test]
    fn truncated_new_op_frames_are_rejected(seed in 0u64..10_000, dim in 1usize..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let requests = [
            Request::PredictValue { key: key(&mut rng), hv: hv(dim, &mut rng) },
            Request::FitValue {
                value: rng.random_range(-1e6..1e6),
                hv: hv(dim, &mut rng),
            },
            Request::Ping,
            Request::PredictValueBatch {
                pairs: (0..rng.random_range(1usize..4))
                    .map(|_| (key(&mut rng), hv(dim, &mut rng)))
                    .collect(),
            },
            Request::Snapshot,
            Request::Restore {
                snapshot: (0..rng.random_range(1usize..32))
                    .map(|_| rng.random_range(0u8..=255))
                    .collect(),
            },
            Request::ShardJoin { addr: format!("{}:7117", key(&mut rng)) },
            Request::ShardLeave { id: rng.random_range(0u32..1000) },
        ];
        for request in requests {
            let mut buffer = Vec::new();
            write_request(&mut buffer, &request).expect("encodable request");
            for cut in 1..buffer.len() {
                let result = read_request(&mut buffer[..cut].as_ref());
                prop_assert!(
                    result.is_err(),
                    "cut at {cut}/{} must not parse: {result:?}",
                    buffer.len()
                );
            }
        }
    }

    /// Appending garbage to a well-formed new-op frame is rejected by the
    /// trailing-bytes check, and a response cut mid-body never parses.
    #[test]
    fn trailing_garbage_on_new_ops_is_rejected(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let responses = [
            Response::Value {
                value: rng.random_range(-1e6..1e6),
                generation: rng.random_range(0u64..1000),
            },
            Response::Pong {
                generation: rng.random_range(0u64..1000),
                uptime_us: rng.random_range(0u64..1 << 40),
            },
            Response::Values {
                predictions: (0..rng.random_range(1usize..4))
                    .map(|_| (rng.random_range(-1e6..1e6), rng.random_range(0u64..100)))
                    .collect(),
            },
            Response::Snapshot {
                bytes: (0..rng.random_range(1usize..32))
                    .map(|_| rng.random_range(0u8..=255))
                    .collect(),
            },
            Response::Restored { generation: rng.random_range(0u64..1000) },
            Response::ShardJoined {
                id: rng.random_range(0u32..1000),
                moved: rng.random_range(0u64..1000),
            },
            Response::ShardLeft {
                removed: rng.random_bool(0.5),
                drained: rng.random_range(0u64..1000),
            },
        ];
        for response in responses {
            let mut buffer = Vec::new();
            write_response(&mut buffer, &response).expect("encodable response");
            // Grow the declared length and append a byte: the cursor's
            // finish() must reject the smuggled tail.
            let mut padded = buffer.clone();
            let declared = u32::from_be_bytes(padded[..4].try_into().unwrap());
            padded[..4].copy_from_slice(&(declared + 1).to_be_bytes());
            padded.push(0xEE);
            prop_assert!(read_response(&mut padded.as_slice()).is_err());
            for cut in 1..buffer.len() {
                prop_assert!(read_response(&mut buffer[..cut].as_ref()).is_err());
            }
        }
    }
}

#[test]
fn oversized_and_wrong_version_frames_are_rejected_for_new_ops() {
    // Oversized length prefix on a predict_value opcode.
    let huge = (MAX_FRAME_BYTES as u32 + 1).to_be_bytes();
    let mut framed = huge.to_vec();
    framed.extend_from_slice(&[PROTOCOL_VERSION, 10]);
    assert!(read_request(&mut framed.as_slice()).is_err());

    // A v1 frame carrying the (v2-only) ping opcode is refused by the
    // version check before the opcode is even looked at.
    let v1_ping = [0u8, 0, 0, 2, 1, 12];
    assert!(read_request(&mut v1_ping.as_slice()).is_err());

    // Same for a v2 frame carrying a v3-only opcode (shard_leave).
    let v2_leave = [0u8, 0, 0, 6, 2, 17, 0, 0, 0, 3];
    assert!(read_request(&mut v2_leave.as_slice()).is_err());

    // An unknown opcode under the current version is refused too.
    let unknown = [0u8, 0, 0, 2, PROTOCOL_VERSION, 200];
    assert!(read_request(&mut unknown.as_slice()).is_err());

    // An empty stream is a clean EOF, not an error.
    assert_eq!(read_request(&mut [].as_slice()).unwrap(), None);
}

/// The opcode constants are the wire format: their numeric values may
/// never drift, or a v3 peer built from a different commit stops
/// interoperating. This test pins every `OP_*`/`RESP_*` constant to its
/// frozen byte (and is what the `wire-opcode-exhaustive` lint points at
/// when a new opcode lands without coverage).
#[test]
fn opcode_bytes_are_frozen() {
    let request_ops = [
        (OP_PREDICT, 1u8),
        (OP_PREDICT_BATCH, 2),
        (OP_INSERT, 3),
        (OP_REMOVE, 4),
        (OP_FIT, 5),
        (OP_REFRESH, 6),
        (OP_ADD_SHARD, 7),
        (OP_REMOVE_SHARD, 8),
        (OP_STATS, 9),
        (OP_PREDICT_VALUE, 10),
        (OP_FIT_VALUE, 11),
        (OP_PING, 12),
        (OP_PREDICT_VALUE_BATCH, 13),
        (OP_SNAPSHOT, 14),
        (OP_RESTORE, 15),
        (OP_SHARD_JOIN, 16),
        (OP_SHARD_LEAVE, 17),
    ];
    let response_ops = [
        (RESP_LABEL, 1u8),
        (RESP_LABELS, 2),
        (RESP_INSERTED, 3),
        (RESP_REMOVED, 4),
        (RESP_FIT_ACK, 5),
        (RESP_REFRESHED, 6),
        (RESP_SHARD_ADDED, 7),
        (RESP_SHARD_REMOVED, 8),
        (RESP_STATS, 9),
        (RESP_VALUE, 10),
        (RESP_PONG, 12),
        (RESP_VALUES, 13),
        (RESP_SNAPSHOT, 14),
        (RESP_RESTORED, 15),
        (RESP_SHARD_JOINED, 16),
        (RESP_SHARD_LEFT, 17),
        (RESP_ERROR, 255),
    ];
    for (constant, frozen) in request_ops {
        assert_eq!(constant, frozen, "request opcode value drifted");
    }
    for (constant, frozen) in response_ops {
        assert_eq!(constant, frozen, "response opcode value drifted");
    }

    // And the constants really are what lands on the wire: byte 5 of a
    // frame (after the u32 length and the version byte) is the opcode.
    let mut frame = Vec::new();
    write_request(&mut frame, &Request::Ping).unwrap();
    assert_eq!(frame[5], OP_PING);
    let mut frame = Vec::new();
    write_response(
        &mut frame,
        &Response::Error {
            message: "x".into(),
        },
    )
    .unwrap();
    assert_eq!(frame[5], RESP_ERROR);
}
