//! Regression test: `HDC_KERNEL=scalar` must force the scalar fallback.
//!
//! The dispatch table is resolved once per process and cached, so this
//! lives in its own integration-test binary: the env var is set before
//! any kernel call, making this process's first (and only) resolution see
//! it. Running it alongside other tests in the same binary would race the
//! `OnceLock`.

use hdc::core::kernels::dispatch::{selected_backend, Backend};

#[test]
fn hdc_kernel_scalar_forces_fallback() {
    // Set before the first dispatch::selected() call in this process, so
    // the one-time resolution observes it.
    std::env::set_var("HDC_KERNEL", "scalar");
    assert_eq!(selected_backend(), Backend::Scalar);
    // Cached: clearing the variable afterwards must not flip the table.
    std::env::remove_var("HDC_KERNEL");
    assert_eq!(selected_backend(), Backend::Scalar);
}
